package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/fleet"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/layout"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/sched"
	"pangenomicsbench/internal/seqmap"
	"pangenomicsbench/internal/simt"
	"pangenomicsbench/internal/wfagpu"
)

// toolRun maps a read set with one tool and accumulates per-stage times.
type toolRun struct {
	name   string
	total  time.Duration
	stages seqmap.StageTimes
	reads  int
	bases  int
	kernel time.Duration // time inside the tool's extracted kernel stage
}

// runSeq2GraphTools executes the four tool models on their read sets.
func (s *Suite) runSeq2GraphTools() ([]toolRun, error) {
	g := s.Pop.Graph
	var runs []toolRun

	mapAll := func(tool pipeline.Tool, reads []gensim.Read) toolRun {
		r := toolRun{name: tool.Name()}
		t0 := time.Now()
		for _, rd := range reads {
			_, st := tool.Map(rd.Seq, nil)
			r.stages.Add(st)
			r.reads++
			r.bases += len(rd.Seq)
		}
		r.total = time.Since(t0)
		return r
	}

	vm, err := pipeline.NewVgMap(g, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return nil, err
	}
	runs = append(runs, mapAll(vm, s.ShortReads))

	gf, err := pipeline.NewVgGiraffe(g, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return nil, err
	}
	runs = append(runs, mapAll(gf, s.ShortReads))

	ga, err := pipeline.NewGraphAligner(g, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return nil, err
	}
	runs = append(runs, mapAll(ga, s.LongReads))

	mgLR, err := pipeline.NewMinigraph(g, s.Cfg.K, s.Cfg.W, false)
	if err != nil {
		return nil, err
	}
	var gwfaLR seqmap.StageTimes
	mgLR.GWFATime = &gwfaLR
	r := mapAll(mgLR, s.LongReads)
	r.kernel = gwfaLR.Chain
	runs = append(runs, r)

	mgCR, err := pipeline.NewMinigraph(g, s.Cfg.K, s.Cfg.W, true)
	if err != nil {
		return nil, err
	}
	var gwfaCR seqmap.StageTimes
	mgCR.GWFATime = &gwfaCR
	asm := s.Pop.Haplotypes[0].Seq
	if len(asm) > 120_000 {
		asm = asm[:120_000]
	}
	t0 := time.Now()
	_, st := mgCR.Map(asm, nil)
	cr := toolRun{name: mgCR.Name(), total: time.Since(t0), stages: st, reads: 1, bases: len(asm)}
	cr.kernel = gwfaCR.Chain
	runs = append(runs, cr)

	return runs, nil
}

// Table1 estimates full-genome mapping runtime for the four Seq2Graph tools
// and the BWA-MEM2 baseline, scaled to 30× coverage of a 3.1 Gbp genome as
// the paper does.
func (s *Suite) Table1() (Table, error) {
	runs, err := s.runSeq2GraphTools()
	if err != nil {
		return Table{}, err
	}
	// Seq2Seq baseline on the same short reads.
	m, err := seqmap.NewMapper(s.Pop.Ref, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return Table{}, err
	}
	t0 := time.Now()
	bases := 0
	for _, r := range s.ShortReads {
		m.Map(r.Seq, nil, nil)
		bases += len(r.Seq)
	}
	runs = append(runs, toolRun{name: "BWA-MEM2", total: time.Since(t0), reads: len(s.ShortReads), bases: bases})

	const genomeBases = 3.1e9 * 30 // 30× coverage of a human genome
	tbl := Table{
		ID:     "table1",
		Title:  "Estimated Full Genome Assembly Runtime (extrapolated)",
		Header: []string{"Tool", "Measured", "Reads", "Est. full genome (h)"},
		Notes: []string{
			"extrapolated from measured per-base throughput to 30x coverage of 3.1 Gbp",
			"paper's ordering: VgMap 67.1h > Minigraph 20.5h > GraphAligner 9.1h > VgGiraffe 4.8h > BWA-MEM2 1.3h",
		},
	}
	for _, r := range runs {
		if r.bases == 0 {
			continue
		}
		perBase := r.total.Seconds() / float64(r.bases)
		hours := perBase * genomeBases / 3600
		tbl.Rows = append(tbl.Rows, []string{
			r.name, r.total.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.reads), f2(hours),
		})
	}
	return tbl, nil
}

// Fig2 reports the Seq2Graph per-stage timing breakdown and the kernel
// fraction within its stage.
func (s *Suite) Fig2() (Table, error) {
	runs, err := s.runSeq2GraphTools()
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:     "fig2",
		Title:  "Seq2Graph Timing Breakdown (stage fractions of total)",
		Header: []string{"Tool", "Seed", "Cluster/Chain", "Filter", "Align", "Kernel share"},
		Notes: []string{
			"paper shapes: Giraffe filter-dominant (GBWT); GraphAligner ~90% align (GBV);",
			"Minigraph chain-heavy with GWFA inside chaining; VgMap spread across stages",
		},
	}
	for _, r := range runs {
		tot := r.stages.Total().Seconds()
		if tot == 0 {
			continue
		}
		kernelShare := "-"
		switch {
		case r.kernel > 0 && r.stages.Chain > 0:
			kernelShare = pct(r.kernel.Seconds() / r.stages.Chain.Seconds())
		case r.name == "VgMap" || r.name == "GraphAligner":
			kernelShare = "align stage"
		case r.name == "VgGiraffe":
			kernelShare = "filter stage"
		}
		tbl.Rows = append(tbl.Rows, []string{
			r.name,
			pct(r.stages.Seed.Seconds() / tot),
			pct(r.stages.Chain.Seconds() / tot),
			pct(r.stages.Filter.Seconds() / tot),
			pct(r.stages.Align.Seconds() / tot),
			kernelShare,
		})
	}
	return tbl, nil
}

// Fig3 reports the graph-building per-stage breakdown for both pipelines.
func (s *Suite) Fig3() (Table, error) {
	names, seqs := s.Pop.AssemblyView()
	pcfg := build.DefaultPGGBConfig()
	pres, err := build.PGGB(context.Background(), names, seqs, pcfg, nil)
	if err != nil {
		return Table{}, err
	}
	mres, err := build.MinigraphCactus(context.Background(), names, seqs, build.DefaultMCConfig(), nil)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:     "fig3",
		Title:  "Pangenome Graph Building Pipeline Breakdown",
		Header: []string{"Pipeline", "Alignment", "Induction", "Polishing", "Visualization", "Total", "Kernel notes"},
		Notes: []string{
			"PGGB: TC dominates induction (>75% in the paper); POA dominates polishing (~80%)",
			"MC: GWFA inside alignment (via minigraph); abPOA inside induction",
		},
	}
	row := func(b build.StageBreakdown, note string) []string {
		// Microsecond resolution keeps small-scale stage times nonzero.
		return []string{
			b.Pipeline,
			b.Alignment.Round(time.Microsecond).String(),
			b.Induction.Round(time.Microsecond).String(),
			b.Polishing.Round(time.Microsecond).String(),
			b.Layout.Round(time.Microsecond).String(),
			b.Total().Round(time.Microsecond).String(),
			note,
		}
	}
	pNote := fmt.Sprintf("TC=%d%% of induction, POA=%d%% of polishing",
		int(100*pres.Breakdown.TCTime.Seconds()/nonzero(pres.Breakdown.Induction.Seconds())),
		int(100*pres.Breakdown.POATime.Seconds()/nonzero(pres.Breakdown.Polishing.Seconds())))
	mNote := fmt.Sprintf("GWFA=%v, POA=%v",
		mres.Breakdown.GWFA.Round(time.Microsecond), mres.Breakdown.POATime.Round(time.Microsecond))
	tbl.Rows = append(tbl.Rows, row(pres.Breakdown, pNote), row(mres.Breakdown, mNote))
	return tbl, nil
}

func nonzero(v float64) float64 {
	if v <= 0 {
		return 1e-12
	}
	return v
}

// Tables23 reports the dataset inventory (the synthetic stand-ins for the
// paper's Tables 2 and 3).
func (s *Suite) Tables23() (Table, error) {
	ks, err := s.Kernels()
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:     "table2-3",
		Title:  "Dataset Inventory (synthetic chr20 stand-in)",
		Header: []string{"Entry", "Inputs", "Input Type", "Parent Tool"},
	}
	stats := s.Pop.Graph.ComputeStats()
	tbl.Rows = append(tbl.Rows,
		[]string{"reference", fmt.Sprintf("%d bp", len(s.Pop.Ref)), "ancestral genome", "-"},
		[]string{"graph", fmt.Sprintf("%d nodes / %d edges", stats.Nodes, stats.Edges), fmt.Sprintf("avg node %.1f bp", stats.AvgNodeLen), "-"},
		[]string{"short reads", fmt.Sprintf("%d × %d bp", len(s.ShortReads), 150), "Illumina-like", "VgMap/Giraffe"},
		[]string{"long reads", fmt.Sprintf("%d × %d bp", len(s.LongReads), s.Cfg.LongLen), "HiFi-like", "GraphAligner/Minigraph"},
		[]string{"assemblies", fmt.Sprintf("%d", len(s.Pop.Haplotypes)), "haplotypes", "MC/PGGB"},
	)
	for _, k := range ks {
		tbl.Rows = append(tbl.Rows, []string{k.Name, fmt.Sprintf("%d", k.Inputs), k.InputType, k.ParentTool})
	}
	return tbl, nil
}

// Table4 measures kernel execution times.
func (s *Suite) Table4() (Table, error) {
	ks, err := s.Kernels()
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:     "table4",
		Title:  "Kernel Measured Execution Time",
		Header: []string{"Kernel", "Time", "Inputs"},
		Notes:  []string{"paper (Machine B, full datasets): GBV 192s GSSW 35s GBWT 23s GWFA-cr 16657s GWFA-lr 720s PGSGD 285s TC 755s"},
	}
	for _, k := range ks {
		d, err := TimeKernel(k)
		if err != nil {
			return Table{}, fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		tbl.Rows = append(tbl.Rows, []string{k.Name, d.Round(time.Microsecond).String(), fmt.Sprintf("%d", k.Inputs)})
	}
	return tbl, nil
}

// profileAll profiles every CPU kernel once (shared by fig6/7/8/table6).
func (s *Suite) profileAll() ([]perf.Report, error) {
	ks, err := s.Kernels()
	if err != nil {
		return nil, err
	}
	var reports []perf.Report
	for _, k := range ks {
		r, err := ProfileKernel(k)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// Fig6Table6 reports the top-down breakdown and IPC per kernel.
func (s *Suite) Fig6Table6() (Table, error) {
	reports, err := s.profileAll()
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:     "fig6+table6",
		Title:  "Top-Down Microarchitectural Analysis and IPC",
		Header: []string{"Kernel", "Retiring", "FrontEnd", "BadSpec", "CoreBound", "MemBound", "IPC"},
		Notes: []string{
			"paper shapes: DP kernels (GSSW/GBV/GWFA) core-bound; GSSW also memory-bound;",
			"GBV high bad-speculation; GBWT not memory-bound; PGSGD memory-bound, IPC<1; TC retiring, highest IPC",
			"paper IPC: GSSW 1.77 GBV 2.22 GBWT 1.92 GWFA-cr 2.67 GWFA-lr 2.90 PGSGD 0.88 TC 3.14",
		},
	}
	for _, r := range reports {
		td := r.TopDown
		tbl.Rows = append(tbl.Rows, []string{
			r.Kernel, pct(td.Retiring), pct(td.FrontEndBound), pct(td.BadSpeculation),
			pct(td.CoreBound), pct(td.MemoryBound), f2(td.IPC),
		})
	}
	return tbl, nil
}

// Fig7 reports misses per kilo-instruction per cache level.
func (s *Suite) Fig7() (Table, error) {
	reports, err := s.profileAll()
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:     "fig7",
		Title:  "Misses per Kilo-Instruction (exclusive, Machine B hierarchy)",
		Header: []string{"Kernel", "L1 MPKI", "L2 MPKI", "L3 MPKI"},
		Notes: []string{
			"paper shapes: DP kernels miss mostly L1 and rarely L3 (small cache-friendly subgraphs);",
			"PGSGD misses at every level (random full-graph accesses)",
		},
	}
	for _, r := range reports {
		tbl.Rows = append(tbl.Rows, []string{r.Kernel, f2(r.L1MPKI), f2(r.L2MPKI), f2(r.L3MPKI)})
	}
	return tbl, nil
}

// Fig8 reports the dynamic instruction mix per kernel.
func (s *Suite) Fig8() (Table, error) {
	reports, err := s.profileAll()
	if err != nil {
		return Table{}, err
	}
	classes := perf.Classes()
	header := []string{"Kernel"}
	for _, c := range classes {
		header = append(header, c.String())
	}
	tbl := Table{
		ID:     "fig8",
		Title:  "Dynamic Instruction Mix (hierarchical binning)",
		Header: header,
		Notes: []string{
			"paper shapes: GSSW vector+memory heavy; GWFA few vector ops (graph code defeats",
			"autovectorization); GBV scalar (64-bit words); PGSGD scalar-FP heavy; GBWT/TC scalar+memory",
		},
	}
	for _, r := range reports {
		row := []string{r.Kernel}
		for _, c := range classes {
			row = append(row, pct(r.Mix[c]))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// Fig5 reports simulated thread scaling (speedup relative to 4 threads) for
// the five workloads of the paper's figure.
func (s *Suite) Fig5() (Table, error) {
	workloads, err := s.scalingWorkloads()
	if err != nil {
		return Table{}, err
	}
	m := sched.MachineA()
	threads := []int{4, 14, 28, 56}
	tbl := Table{
		ID:     "fig5",
		Title:  "Thread Scaling (makespan simulation on Machine A, speedup vs 4 threads)",
		Header: []string{"Workload", "4", "14", "28", "56"},
		Notes: []string{
			"simulated from measured single-thread task costs (see DESIGN.md substitutions);",
			"paper shapes: mapping tools near-linear to 28 then HT drop; Minigraph-cr flat;",
			"seqwish plateaus ~4 threads; odgi-layout sublinear (sequential path index + barriers);",
			"PGGB-allpair (construction) caps at C(n,2) pair tasks + sequential merge;",
			"MC-growth chains per-assembly steps (parallel chunk maps, sequential induction)",
		},
	}
	for _, w := range workloads {
		sp := sched.Speedups(m, w, threads)
		row := []string{w.Name}
		for _, v := range sp {
			row = append(row, f2(v))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// Fig5Fleet reports the construction fleet's node-scaling curve: predicted
// speedup from a sched.GrowthChain model of the sharded all-pair build
// (measured single-pair task costs plus the sequential canonical merge)
// next to measured wall-clock rows from real in-process fleets of width-1
// loopback workers, for 1/2/4/8 nodes.
func (s *Suite) Fig5Fleet() (Table, error) {
	names, seqs := s.Pop.AssemblyView()
	capped := make([][]byte, len(seqs))
	for i, seq := range seqs {
		if len(seq) > 60_000 {
			seq = seq[:60_000]
		}
		capped[i] = seq
	}

	// Measured single-pair task costs and merge cost feed the model.
	var tasks []float64
	var blocks [][]build.MatchBlock
	for i := 0; i < len(capped); i++ {
		for j := i + 1; j < len(capped); j++ {
			t0 := time.Now()
			blk, _, err := build.PairMatches(i, capped[i], j, capped[j], s.Cfg.K, s.Cfg.W, nil)
			if err != nil {
				return Table{}, err
			}
			tasks = append(tasks, time.Since(t0).Seconds())
			blocks = append(blocks, blk)
		}
	}
	t0 := time.Now()
	merged := make([]build.MatchBlock, 0)
	for _, blk := range blocks {
		merged = append(merged, blk...)
	}
	_ = merged
	mergeTime := time.Since(t0).Seconds()

	nodeCounts := []int{1, 2, 4, 8}
	// The cluster model: each node is one executor with no hyperthreading
	// and no cross-node memory contention; the build is a one-step growth
	// chain — parallel pair tasks, then the coordinator's sequential merge.
	cluster := sched.Machine{Name: "fleet", Cores: 8, Threads: 8, HTYield: 0, MemCapThreads: 8}
	chain := sched.GrowthChain("fleet-allpair", []sched.GrowthStep{{Tasks: tasks, Sequential: mergeTime}}, 0)
	predicted := sched.Speedups(cluster, chain, nodeCounts)

	// Measured rows: real coordinators over width-1 loopback workers, with
	// cold shard caches for every node count. Each coordinator carries a
	// metric set so the shard-balance gauges quantify the hash skew the
	// scaling plateau comes from.
	walls := make([]time.Duration, len(nodeCounts))
	maxShard := make([]int64, len(nodeCounts))
	imbalance := make([]int64, len(nodeCounts))
	for ni, n := range nodeCounts {
		fm := perf.NewMetrics()
		coord := fleet.NewCoordinator(fleet.Config{Metrics: fm})
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("node-%02d", i)
			if err := coord.AddNode(name, fleet.NewLocalNode(fleet.NewWorker(name, 0), 1)); err != nil {
				coord.Close()
				return Table{}, err
			}
		}
		if err := coord.RegisterAssemblies(names, capped); err != nil {
			coord.Close()
			return Table{}, err
		}
		snap := fm.Snapshot()
		imbalance[ni] = snap.Gauges["fleet.shard_imbalance_milli"].Value
		for i := 0; i < n; i++ {
			key := obs.WithLabel("fleet.shard_pairs", "node", fmt.Sprintf("node-%02d", i))
			if v := snap.Gauges[key].Value; v > maxShard[ni] {
				maxShard[ni] = v
			}
		}
		t1 := time.Now()
		_, _, _, err := coord.AllPairMatches(context.Background(), names, s.Cfg.K, s.Cfg.W)
		walls[ni] = time.Since(t1)
		coord.Close()
		if err != nil {
			return Table{}, err
		}
	}

	tbl := Table{
		ID:     "fig5-fleet",
		Title:  "Fleet Node Scaling (PGGB all-pair construction, speedup vs 1 node)",
		Header: []string{"Nodes", "Predicted x", "Measured wall", "Measured x", "Max shard", "Imbalance"},
		Notes: []string{
			fmt.Sprintf("%d pair tasks sharded by canonical pair hash over width-1 loopback workers;", len(tasks)),
			"predicted: sched.GrowthChain makespan with greedy task placement;",
			"measured: hash routing cannot rebalance, so skewed shards lag the greedy bound,",
			"and the curve plateaus once nodes outnumber the heaviest shard's task load;",
			"max shard / imbalance: the fleet.shard_pairs / fleet.shard_imbalance_milli gauges",
			"(heaviest shard's pair count; max/mean ratio ×1000, 1000 = perfectly balanced)",
		},
	}
	for ni, n := range nodeCounts {
		meas := 0.0
		if walls[ni] > 0 {
			meas = walls[0].Seconds() / walls[ni].Seconds()
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n), f2(predicted[ni]), walls[ni].Round(time.Microsecond).String(), f2(meas),
			fmt.Sprintf("%d", maxShard[ni]), fmt.Sprintf("%.2f", float64(imbalance[ni])/1000),
		})
	}
	return tbl, nil
}

// scalingWorkloads builds the Fig. 5 workload models from measured costs.
func (s *Suite) scalingWorkloads() ([]sched.Workload, error) {
	var out []sched.Workload

	// Mapping tools: per-read independent tasks.
	measure := func(name string, tool pipeline.Tool, reads [][]byte) sched.Workload {
		var tasks []float64
		for _, r := range reads {
			t0 := time.Now()
			tool.Map(r, nil)
			tasks = append(tasks, time.Since(t0).Seconds())
		}
		// Clamp outliers at 5× the median: single-read costs measured on a
		// busy host include GC/scheduler noise that a real per-read
		// distribution does not have.
		sorted := append([]float64(nil), tasks...)
		sort.Float64s(sorted)
		clamp := 5 * sorted[len(sorted)/2]
		for i := range tasks {
			if tasks[i] > clamp {
				tasks[i] = clamp
			}
		}
		// Replicate small measured batches to full-dataset size so tail
		// latency does not dominate (the paper's runs map 158k+ reads;
		// §5.1 notes small batches are tail-latency limited).
		for len(tasks) < 1024 {
			tasks = append(tasks, tasks...)
		}
		return sched.Workload{Name: name, Phases: []sched.Phase{{Name: "map", Tasks: tasks, MemFraction: 0.1}}}
	}
	short := make([][]byte, 0, len(s.ShortReads))
	for _, r := range s.ShortReads {
		short = append(short, r.Seq)
	}
	long := make([][]byte, 0, len(s.LongReads))
	for _, r := range s.LongReads {
		long = append(long, r.Seq)
	}

	if tool, err := pipeline.NewVgGiraffe(s.Pop.Graph, s.Cfg.K, s.Cfg.W); err == nil {
		out = append(out, measure("VgGiraffe", tool, short))
	}
	if tool, err := pipeline.NewGraphAligner(s.Pop.Graph, s.Cfg.K, s.Cfg.W); err == nil {
		out = append(out, measure("GraphAligner/Minigraph-lr", tool, long))
	}

	// Minigraph-cr: one indivisible task.
	if tool, err := pipeline.NewMinigraph(s.Pop.Graph, s.Cfg.K, s.Cfg.W, true); err == nil {
		asm := s.Pop.Haplotypes[0].Seq
		if len(asm) > 60_000 {
			asm = asm[:60_000]
		}
		t0 := time.Now()
		tool.Map(asm, nil)
		out = append(out, sched.Workload{Name: "Minigraph-cr", Phases: []sched.Phase{{
			Name: "map", Tasks: []float64{time.Since(t0).Seconds()}, MaxParallel: 1,
		}}})
	}

	// seqwish: pipelined chunked transclosure + emission.
	if b, err := s.TCBuilder(); err == nil {
		t0 := time.Now()
		b.Transclose(nil)
		tcTime := time.Since(t0).Seconds()
		chunks := 16
		compute := make([]float64, chunks)
		emit := make([]float64, chunks)
		for i := range compute {
			compute[i] = tcTime * 0.7 / float64(chunks)
			emit[i] = tcTime * 0.3 / float64(chunks)
		}
		out = append(out, sched.Workload{Name: "seqwish", Phases: []sched.Phase{
			{Name: "unpack", Tasks: uniform(8, tcTime*0.05)},
			{Name: "transclose", Tasks: compute, EmitChunks: emit, MemFraction: 0.3},
			{Name: "gfa-out", Sequential: tcTime * 0.15},
		}})
	}

	// PGGB all-vs-all construction (build.AllPairMatches as a sched workload):
	// C(n,2) independent pair-match tasks on the worker pool, then the
	// sequential canonical-order merge of the per-pair match blocks. With few
	// assemblies the task count bounds parallelism, so the curve plateaus far
	// below the mapping tools — the construction-side contrast in Fig. 5.
	{
		seqs := make([][]byte, 0, len(s.Pop.Haplotypes))
		for _, h := range s.Pop.Haplotypes {
			seq := h.Seq
			if len(seq) > 60_000 {
				seq = seq[:60_000]
			}
			seqs = append(seqs, seq)
		}
		var tasks []float64
		var blocks [][]build.MatchBlock
		for i := 0; i < len(seqs); i++ {
			for j := i + 1; j < len(seqs); j++ {
				t0 := time.Now()
				blk, _, err := build.PairMatches(i, seqs[i], j, seqs[j], s.Cfg.K, s.Cfg.W, nil)
				if err != nil {
					continue
				}
				tasks = append(tasks, time.Since(t0).Seconds())
				blocks = append(blocks, blk)
			}
		}
		if len(tasks) > 0 {
			t0 := time.Now()
			merged := make([]build.MatchBlock, 0)
			for _, blk := range blocks {
				merged = append(merged, blk...)
			}
			_ = merged
			mergeTime := time.Since(t0).Seconds()
			out = append(out, sched.Workload{Name: "PGGB-allpair", Phases: []sched.Phase{
				{Name: "pair-match", Tasks: tasks, MemFraction: 0.25},
				{Name: "merge", Sequential: mergeTime},
			}})
		}
	}

	// MC-growth: Minigraph-Cactus iterative construction. A serial
	// (Workers=1) run yields measured per-chunk mapping and per-step
	// induction costs (build.Result.Growth); the workload is the sequential
	// per-assembly chain with parallel chunk-mapping tasks inside each step.
	{
		names, seqs := s.Pop.AssemblyView()
		capped := make([][]byte, len(seqs))
		for i, seq := range seqs {
			if len(seq) > 60_000 {
				seq = seq[:60_000]
			}
			capped[i] = seq
		}
		cfg := build.DefaultMCConfig()
		cfg.LayoutIterations = 0
		cfg.Workers = 1 // single-thread task costs feed the simulator
		if mres, err := build.MinigraphCactus(context.Background(), names, capped, cfg, nil); err == nil && len(mres.Growth) > 0 {
			steps := make([]sched.GrowthStep, 0, len(mres.Growth))
			for _, st := range mres.Growth {
				tasks := make([]float64, 0, len(st.ChunkTimes))
				for _, ct := range st.ChunkTimes {
					tasks = append(tasks, ct.Seconds())
				}
				steps = append(steps, sched.GrowthStep{
					Tasks:      tasks,
					Sequential: (st.Induction + st.IndexTime).Seconds(),
				})
			}
			out = append(out, sched.GrowthChain("MC-growth", steps, 0.25))
		}
	}

	// odgi-layout: sequential path index + 30 barriered PGSGD iterations.
	{
		t0 := time.Now()
		if _, err := layout.NewPathIndex(s.Pop.Graph); err == nil {
			idxTime := time.Since(t0).Seconds()
			l, err := layout.New(s.Pop.Graph, 3)
			if err == nil {
				params := layout.DefaultParams(s.Pop.Graph)
				params.Iterations = 1
				t1 := time.Now()
				l.Run(params, nil)
				iterTime := time.Since(t1).Seconds()
				phases := []sched.Phase{{Name: "path-index", Sequential: idxTime}}
				for i := 0; i < 30; i++ {
					phases = append(phases, sched.Phase{
						Name: "sgd-iter", Tasks: uniform(256, iterTime/256), MemFraction: 0.45,
					})
				}
				out = append(out, sched.Workload{Name: "odgi-layout", Phases: phases})
			}
		}
	}
	return out, nil
}

func uniform(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Fig9 compares TSU (simulated GPU) against the CPU WFA across read
// lengths at 1% divergence. Both sides use modeled hardware time — the CPU
// through the perf pipeline model at Machine B's 2.9 GHz, the GPU through
// the SIMT simulator at the A6000's clock — so the comparison reflects the
// paper's hardware rather than this host.
func (s *Suite) Fig9() (Table, error) {
	const cpuClockGHz = 2.9 // Machine B (Table 5)
	lengths := []int{128, 256, 512, 1000, 2000, 5000, 10000}
	dev := simt.A6000()
	tbl := Table{
		ID:     "fig9",
		Title:  "GPU (TSU, simulated) vs CPU WFA (modeled) Timing, 1% error pairs",
		Header: []string{"Length", "CPU WFA (model)", "TSU (sim)", "GPU/CPU speedup", "Single-lane frac"},
		Notes: []string{
			"paper shape: TSU up to ~3.7x faster at short lengths, slower at 10 kbp;",
			"single-thread-diagonal fraction grows to ~74% at 10 kbp",
		},
	}
	// Constant-volume batching: every length aligns the same total base
	// count, as the TSU evaluation protocol does.
	const totalBases = 768_000
	for _, L := range lengths {
		count := totalBases / L
		if count < 4 {
			count = 4
		}
		pairs := s.TSUPairs(count, L)
		// CPU side: modeled cycles of a serial run.
		probe := perf.NewProbe()
		for _, p := range pairs {
			align.WFAEdit(p.A, p.B, probe)
		}
		cpuSecs := perf.Analyze(probe).Cycles / (cpuClockGHz * 1e9)
		cpu := time.Duration(cpuSecs * float64(time.Second))
		// GPU side (simulated).
		st, err := wfagpu.Align(dev, pairs)
		if err != nil {
			return Table{}, err
		}
		gpu := time.Duration(st.Metrics.TimeMS * float64(time.Millisecond))
		speedup := cpu.Seconds() / nonzero(gpu.Seconds())
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", L),
			cpu.Round(time.Microsecond).String(),
			gpu.Round(time.Microsecond).String(),
			f2(speedup),
			f2(st.SingleLaneFrac),
		})
	}
	return tbl, nil
}

// Table7 reports GPU utilization for TSU and PGSGD-GPU.
func (s *Suite) Table7() (Table, error) {
	dev := simt.A6000()
	// Enough alignments to fill every SM's resident-block slots several
	// times over (Table 3's TSU dataset has 50k pairs).
	pairs := s.TSUPairs(4*dev.SMs*16, 1000)
	tsu, err := wfagpu.Align(dev, pairs)
	if err != nil {
		return Table{}, err
	}
	l, err := layout.New(s.Pop.Graph, 7)
	if err != nil {
		return Table{}, err
	}
	params := layout.DefaultGPUParams(s.Pop.Graph.NumNodes() * 16)
	pgsgd, err := l.RunGPU(dev, params)
	if err != nil {
		return Table{}, err
	}
	params256 := params
	params256.BlockSize = 256
	pgsgd256, err := l.RunGPU(dev, params256)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:     "table7",
		Title:  "GPU Microarchitecture Utilization (SIMT simulator)",
		Header: []string{"Kernel", "Occupancy (theor.)", "Occupancy (achieved)", "Warp Util.", "Mem BW Util.", "Issue interval"},
		Notes: []string{
			"paper: TSU 32.97% occupancy / 69.72% warp util / 39.89% BW;",
			"PGSGD 53.85% / 88.31% / 41.91%; block 256 raises theoretical occupancy to 83.3%",
		},
	}
	add := func(name string, m simt.Metrics) {
		tbl.Rows = append(tbl.Rows, []string{
			name, pct(m.TheoreticalOccupancy), pct(m.AchievedOccupancy),
			pct(m.WarpUtilization), pct(m.MemBWUtilization), f2(m.IssueIntervalCycles),
		})
	}
	add("TSU", tsu.Metrics)
	add("PGSGD (block 1024)", pgsgd)
	add("PGSGD (block 256)", pgsgd256)
	return tbl, nil
}

// Fig10 compares GSSW with the Seq2Seq SSW baseline on the same reads
// (case study §6.1).
func (s *Suite) Fig10() (Table, error) {
	refs, qrys, err := s.SSWInputs()
	if err != nil {
		return Table{}, err
	}
	sswProbe := perf.NewProbe()
	sc := bio.DefaultScoring
	for i := range refs {
		align.StripedSW(refs[i], qrys[i], sc, sswProbe)
	}
	sswRep := perf.NewReport("SSW", sswProbe)

	gsswIn, err := s.GSSWInputs()
	if err != nil {
		return Table{}, err
	}
	gsswProbe := perf.NewProbe()
	for _, in := range gsswIn {
		if _, err := align.GSSW(in.Sub, in.Query, sc, gsswProbe); err != nil {
			return Table{}, err
		}
	}
	gsswRep := perf.NewReport("GSSW", gsswProbe)

	tbl := Table{
		ID:     "fig10",
		Title:  "Seq2Seq (SSW) vs Seq2Graph (GSSW) Comparison",
		Header: []string{"Kernel", "Retiring", "FrontEnd", "BadSpec", "CoreBound", "MemBound", "IPC", "Stores/instr"},
		Notes: []string{
			"paper: GSSW has ~3x the memory stalls of SSW, from swizzle writes of the full DP matrix",
		},
	}
	for _, r := range []perf.Report{sswRep, gsswRep} {
		probe := sswProbe
		if r.Kernel == "GSSW" {
			probe = gsswProbe
		}
		storesPerInstr := float64(probe.Stores) / float64(nonzeroU(probe.Instructions()))
		td := r.TopDown
		tbl.Rows = append(tbl.Rows, []string{
			r.Kernel, pct(td.Retiring), pct(td.FrontEndBound), pct(td.BadSpeculation),
			pct(td.CoreBound), pct(td.MemoryBound), f2(td.IPC), f2(storesPerInstr),
		})
	}
	return tbl, nil
}

func nonzeroU(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

// Fig11 compares GSSW on the M-Graph against the Split-M-Graph (case study
// §6.2).
func (s *Suite) Fig11() (Table, error) {
	sc := bio.DefaultScoring
	// M-Graph capture.
	mIn, err := s.GSSWInputs()
	if err != nil {
		return Table{}, err
	}
	// Split-M-Graph capture: re-run Vg Map on the node-split graph.
	split := s.SplitGraph(8)
	tool, err := pipeline.NewVgMap(split, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return Table{}, err
	}
	var splitIn []pipeline.GSSWInput
	tool.Capture = &splitIn
	for _, r := range s.ShortReads {
		tool.Map(r.Seq, nil)
	}
	if len(splitIn) == 0 {
		return Table{}, fmt.Errorf("core: no Split-M-Graph GSSW inputs captured")
	}

	run := func(name string, inputs []pipeline.GSSWInput) ([]string, float64, error) {
		probe := perf.NewProbe()
		t0 := time.Now()
		var subBases int
		for _, in := range inputs {
			subBases += in.Sub.TotalSeqLen()
			if _, err := align.GSSW(in.Sub, in.Query, sc, probe); err != nil {
				return nil, 0, err
			}
		}
		elapsed := time.Since(t0)
		rep := perf.NewReport(name, probe)
		td := rep.TopDown
		avgSub := float64(subBases) / float64(len(inputs))
		return []string{
			name, fmt.Sprintf("%d", len(inputs)), f2(avgSub),
			fmt.Sprintf("%.0f", td.Cycles), pct(td.MemoryBound), f2(td.IPC),
			elapsed.Round(time.Microsecond).String(),
		}, td.Cycles, nil
	}

	tbl := Table{
		ID:     "fig11",
		Title:  "M-Graph vs Split-M-Graph with GSSW",
		Header: []string{"Graph", "Alignments", "Avg subgraph bp", "Model cycles", "MemBound", "IPC", "Wall time"},
		Notes: []string{
			"paper: splitting nodes (≤8 bp) shrinks extracted subgraphs (450→233 bp avg),",
			"reducing GSSW cycles at similar microarchitectural utilization",
		},
	}
	mRow, _, err := run("M-Graph", mIn)
	if err != nil {
		return Table{}, err
	}
	sRow, _, err := run("Split-M-Graph", splitIn)
	if err != nil {
		return Table{}, err
	}
	mStats := s.Pop.Graph.ComputeStats()
	spStats := split.ComputeStats()
	tbl.Notes = append(tbl.Notes, fmt.Sprintf("avg node length: M=%.2f bp, Split-M=%.2f bp", mStats.AvgNodeLen, spStats.AvgNodeLen))
	tbl.Rows = append(tbl.Rows, mRow, sRow)
	return tbl, nil
}

// Experiments lists all experiment IDs in canonical order. The last two are
// extension studies beyond the paper's figures: the §6.1 proposed
// optimization, and the §5.2 index contrast.
func Experiments() []string {
	return []string{"table1", "table2-3", "table4", "fig2", "fig3", "fig5", "fig5-fleet", "fig6+table6", "fig7", "fig8", "fig9", "table7", "fig10", "fig11", "opt-gssw", "gbwt-vs-fmindex"}
}

// Run dispatches an experiment by ID.
func (s *Suite) Run(id string) (Table, error) {
	switch id {
	case "table1":
		return s.Table1()
	case "table2-3", "table2", "table3":
		return s.Tables23()
	case "table4":
		return s.Table4()
	case "fig2":
		return s.Fig2()
	case "fig3":
		return s.Fig3()
	case "fig5":
		return s.Fig5()
	case "fig5-fleet":
		return s.Fig5Fleet()
	case "fig6+table6", "fig6", "table6":
		return s.Fig6Table6()
	case "fig7":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	case "table7":
		return s.Table7()
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "opt-gssw":
		return s.OptGSSW()
	case "gbwt-vs-fmindex":
		return s.GBWTvsFMIndex()
	}
	ids := Experiments()
	sort.Strings(ids)
	return Table{}, fmt.Errorf("core: unknown experiment %q (known: %v)", id, ids)
}

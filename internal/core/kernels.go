package core

import (
	"fmt"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/gbwt"
	"pangenomicsbench/internal/layout"
	"pangenomicsbench/internal/perf"
)

// Kernel is one benchmark-suite entry (Table 3): a named kernel with its
// parent tool, input count, and a runner that executes the whole corpus,
// optionally instrumented.
type Kernel struct {
	Name       string
	ParentTool string
	InputType  string
	Inputs     int
	// Run executes the kernel over its corpus; probe may be nil.
	Run func(probe *perf.Probe) error
}

// Kernels builds the CPU kernel registry over the suite's corpora. The set
// mirrors Table 3's CPU rows: GSSW, GBWT, GBV, GWFA-lr, GWFA-cr, TC, PGSGD.
func (s *Suite) Kernels() ([]Kernel, error) {
	var ks []Kernel

	gssw, err := s.GSSWInputs()
	if err != nil {
		return nil, err
	}
	ks = append(ks, Kernel{
		Name: "GSSW", ParentTool: "Vg Map", InputType: "Read Fragment", Inputs: len(gssw),
		Run: func(p *perf.Probe) error {
			sc := bio.DefaultScoring
			for _, in := range gssw {
				if _, err := align.GSSW(in.Sub, in.Query, sc, p); err != nil {
					return err
				}
			}
			return nil
		},
	})

	gbwtIn, err := s.GBWTInputs()
	if err != nil {
		return nil, err
	}
	idx, err := gbwt.Build(s.Pop.Graph)
	if err != nil {
		return nil, err
	}
	ks = append(ks, Kernel{
		Name: "GBWT", ParentTool: "Vg Giraffe", InputType: "GBWT Query", Inputs: len(gbwtIn),
		Run: func(p *perf.Probe) error {
			for _, q := range gbwtIn {
				idx.Find(q.Nodes, p)
			}
			return nil
		},
	})

	gbv, err := s.GBVInputs()
	if err != nil {
		return nil, err
	}
	ks = append(ks, Kernel{
		Name: "GBV", ParentTool: "GraphAligner", InputType: "Clusters", Inputs: len(gbv),
		Run: func(p *perf.Probe) error {
			for _, in := range gbv {
				if _, err := align.GBV(in.Sub, in.Query, p); err != nil {
					return err
				}
			}
			return nil
		},
	})

	for _, mode := range []struct {
		name string
		chr  bool
		in   string
	}{{"GWFA-lr", false, "Read Gaps"}, {"GWFA-cr", true, "Chrom Gaps"}} {
		inputs, err := s.GWFAInputs(mode.chr)
		if err != nil {
			return nil, err
		}
		ks = append(ks, Kernel{
			Name: mode.name, ParentTool: "Minigraph", InputType: mode.in, Inputs: len(inputs),
			Run: func(p *perf.Probe) error {
				for _, in := range inputs {
					q := in.Query
					if len(q) > 2000 {
						q = q[:2000]
					}
					if _, err := align.GWFA(in.G, in.Start, q, p); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}

	tcBuilder, err := s.TCBuilder()
	if err != nil {
		return nil, err
	}
	ks = append(ks, Kernel{
		Name: "TC", ParentTool: "PGGB", InputType: "Alignments", Inputs: int(tcBuilder.Total()),
		Run: func(p *perf.Probe) error {
			tcBuilder.Transclose(p)
			return nil
		},
	})

	lg, err := s.LayoutGraph()
	if err != nil {
		return nil, err
	}
	ks = append(ks, Kernel{
		Name: "PGSGD", ParentTool: "PGGB", InputType: "Pangenome", Inputs: lg.NumNodes(),
		Run: func(p *perf.Probe) error {
			l, err := layout.New(lg, 31)
			if err != nil {
				return err
			}
			params := layout.DefaultParams(lg)
			params.Iterations = 4
			params.UpdatesPerIter = 100_000
			l.Run(params, p)
			return nil
		},
	})

	return ks, nil
}

// TimeKernel measures a kernel's uninstrumented wall time.
func TimeKernel(k Kernel) (time.Duration, error) {
	t0 := time.Now()
	if err := k.Run(nil); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

// ProfileKernel runs a kernel instrumented and reduces the event stream to
// a perf report (Fig. 6/7/8, Table 6).
func ProfileKernel(k Kernel) (perf.Report, error) {
	probe := perf.NewProbe()
	if err := k.Run(probe); err != nil {
		return perf.Report{}, err
	}
	if probe.Instructions() == 0 {
		return perf.Report{}, fmt.Errorf("core: kernel %s recorded no instructions", k.Name)
	}
	return perf.NewReport(k.Name, probe), nil
}

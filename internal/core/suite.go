// Package core assembles PangenomicsBench itself: it generates the
// benchmark datasets (the synthetic stand-ins for Tables 2–3), captures
// each kernel's input corpus by running the tool pipelines up to the kernel
// (§4.2), and drives every experiment of the paper — each table and figure
// has a driver that returns a renderable text table (see experiments.go).
package core

import (
	"fmt"
	"math/rand"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/seqwish"
	"pangenomicsbench/internal/wfagpu"
)

// Scale selects dataset sizes.
type Scale int

// Scales: Small keeps unit tests fast; Bench is the default for the
// experiment harness; Large approaches the paper's relative workloads.
const (
	Small Scale = iota
	Bench
	Large
)

// Config holds the dataset parameters derived from a Scale.
type Config struct {
	RefLen     int
	Haplotypes int
	ShortReads int
	LongReads  int
	LongLen    int
	K, W       int
	Seed       int64
}

// ConfigFor maps a scale to concrete sizes.
func ConfigFor(s Scale) Config {
	switch s {
	case Small:
		return Config{RefLen: 30_000, Haplotypes: 4, ShortReads: 40, LongReads: 4, LongLen: 2_000, K: 15, W: 10, Seed: 42}
	case Large:
		return Config{RefLen: 1_000_000, Haplotypes: 14, ShortReads: 2_000, LongReads: 60, LongLen: 15_000, K: 15, W: 10, Seed: 42}
	default:
		return Config{RefLen: 200_000, Haplotypes: 8, ShortReads: 400, LongReads: 16, LongLen: 8_000, K: 15, W: 10, Seed: 42}
	}
}

// Suite is one instantiated benchmark environment: the population, its
// pangenome graph, read sets, the tool models, and lazily captured kernel
// corpora.
type Suite struct {
	Cfg Config
	Pop *gensim.Population

	ShortReads []gensim.Read
	LongReads  []gensim.Read

	// Captured kernel corpora (nil until the capture method runs).
	gssw    []pipeline.GSSWInput
	gbwt    []pipeline.GBWTInput
	gbv     []pipeline.GBVInput
	gwfaLR  []pipeline.GWFAInput
	gwfaCR  []pipeline.GWFAInput
	sswRefs [][]byte
	sswQrys [][]byte
	tcB     *seqwish.Builder
	tsu     []wfagpu.Pair

	// layoutGraph is a dedicated large graph for PGSGD characterization:
	// like the paper's GBWT dataset (§4.2, "we use the full graph … because
	// cache behavior is especially sensitive to graph size"), PGSGD's
	// memory behaviour only appears when the layout footprint exceeds the
	// last-level cache, so this graph is sized independently of the scale.
	layoutGraph *graph.Graph
}

// LayoutGraph lazily builds the PGSGD characterization graph.
func (s *Suite) LayoutGraph() (*graph.Graph, error) {
	if s.layoutGraph != nil {
		return s.layoutGraph, nil
	}
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 12_000_000
	cfg.Haplotypes = 6
	cfg.SNPRate = 0.004
	cfg.IndelRate = 0.0008
	cfg.Seed = s.Cfg.Seed + 77
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		return nil, err
	}
	s.layoutGraph = pop.Graph
	return s.layoutGraph, nil
}

// NewSuite generates the environment for a scale.
func NewSuite(scale Scale) (*Suite, error) {
	cfg := ConfigFor(scale)
	gcfg := gensim.DefaultConfig()
	gcfg.RefLen = cfg.RefLen
	gcfg.Haplotypes = cfg.Haplotypes
	gcfg.Seed = cfg.Seed
	pop, err := gensim.Simulate(gcfg)
	if err != nil {
		return nil, err
	}
	s := &Suite{Cfg: cfg, Pop: pop}
	rc := gensim.ShortReadConfig(cfg.ShortReads)
	if s.ShortReads, err = pop.SimulateReads(rc); err != nil {
		return nil, err
	}
	lc := gensim.LongReadConfig(cfg.LongReads)
	lc.Length = cfg.LongLen
	if s.LongReads, err = pop.SimulateReads(lc); err != nil {
		return nil, err
	}
	return s, nil
}

// GSSWInputs captures the Vg Map alignment corpus (run the tool up to the
// kernel and store its inputs, §4.2).
func (s *Suite) GSSWInputs() ([]pipeline.GSSWInput, error) {
	if s.gssw != nil {
		return s.gssw, nil
	}
	tool, err := pipeline.NewVgMap(s.Pop.Graph, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return nil, err
	}
	var cap []pipeline.GSSWInput
	tool.Capture = &cap
	for _, r := range s.ShortReads {
		tool.Map(r.Seq, nil)
	}
	if len(cap) == 0 {
		return nil, fmt.Errorf("core: no GSSW inputs captured")
	}
	s.gssw = cap
	return cap, nil
}

// GBWTInputs captures the Giraffe GBWT query corpus, supplemented (as the
// paper does) with random haplotype subpaths of length 1–100.
func (s *Suite) GBWTInputs() ([]pipeline.GBWTInput, error) {
	if s.gbwt != nil {
		return s.gbwt, nil
	}
	tool, err := pipeline.NewVgGiraffe(s.Pop.Graph, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return nil, err
	}
	var cap []pipeline.GBWTInput
	tool.Capture = &cap
	for _, r := range s.ShortReads {
		tool.Map(r.Seq, nil)
	}
	// Random subpath queries (§4.2: "randomly sampling subsequences from
	// the haplotypes in the graph with lengths between 1 and 100").
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 1))
	paths := s.Pop.Graph.Paths()
	for i := 0; i < len(s.ShortReads)*4; i++ {
		p := paths[rng.Intn(len(paths))]
		if len(p.Nodes) == 0 {
			continue
		}
		n := 1 + rng.Intn(100)
		if n > len(p.Nodes) {
			n = len(p.Nodes)
		}
		start := rng.Intn(len(p.Nodes) - n + 1)
		cap = append(cap, pipeline.GBWTInput{Nodes: p.Nodes[start : start+n]})
	}
	s.gbwt = cap
	return cap, nil
}

// GBVInputs captures the GraphAligner cluster corpus from long reads.
func (s *Suite) GBVInputs() ([]pipeline.GBVInput, error) {
	if s.gbv != nil {
		return s.gbv, nil
	}
	tool, err := pipeline.NewGraphAligner(s.Pop.Graph, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return nil, err
	}
	var cap []pipeline.GBVInput
	tool.Capture = &cap
	for _, r := range s.LongReads {
		tool.Map(r.Seq, nil)
	}
	if len(cap) == 0 {
		return nil, fmt.Errorf("core: no GBV inputs captured")
	}
	s.gbv = cap
	return cap, nil
}

// GWFAInputs captures the Minigraph bridging corpora: long-read mode and
// chromosome (assembly) mode.
func (s *Suite) GWFAInputs(chromosome bool) ([]pipeline.GWFAInput, error) {
	cached := &s.gwfaLR
	if chromosome {
		cached = &s.gwfaCR
	}
	if *cached != nil {
		return *cached, nil
	}
	tool, err := pipeline.NewMinigraph(s.Pop.Graph, s.Cfg.K, s.Cfg.W, chromosome)
	if err != nil {
		return nil, err
	}
	var cap []pipeline.GWFAInput
	tool.Capture = &cap
	if chromosome {
		// Assembly mapping: the whole first haplotype as one query.
		asm := s.Pop.Haplotypes[0].Seq
		if len(asm) > 120_000 {
			asm = asm[:120_000]
		}
		tool.Map(asm, nil)
	} else {
		for _, r := range s.LongReads {
			tool.Map(r.Seq, nil)
		}
	}
	if len(cap) == 0 {
		return nil, fmt.Errorf("core: no GWFA inputs captured (chromosome=%v)", chromosome)
	}
	*cached = cap
	return cap, nil
}

// TCBuilder captures the seqwish transclosure input: the assemblies and
// their all-to-all matches (the PGGB alignment stage output).
func (s *Suite) TCBuilder() (*seqwish.Builder, error) {
	if s.tcB != nil {
		return s.tcB, nil
	}
	names, seqs := s.Pop.AssemblyView()
	b, err := seqwish.NewBuilder(names, seqs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			blocks, err := pairMatches(i, seqs[i], j, seqs[j], s.Cfg.K, s.Cfg.W)
			if err != nil {
				return nil, err
			}
			for _, blk := range blocks {
				if err := b.AddMatch(blk.SeqA, blk.PosA, blk.SeqB, blk.PosB, blk.Len); err != nil {
					return nil, err
				}
			}
		}
	}
	s.tcB = b
	return b, nil
}

// SSWInputs captures the Seq2Seq baseline alignment corpus (case study
// §6.1): the same short reads mapped to the linear reference.
func (s *Suite) SSWInputs() ([][]byte, [][]byte, error) {
	if s.sswRefs != nil {
		return s.sswRefs, s.sswQrys, nil
	}
	m, err := newSeqMapper(s.Pop.Ref, s.Cfg.K, s.Cfg.W)
	if err != nil {
		return nil, nil, err
	}
	refs, qrys, err := m.captureSSW(s.ShortReads)
	if err != nil {
		return nil, nil, err
	}
	s.sswRefs, s.sswQrys = refs, qrys
	return refs, qrys, nil
}

// TSUPairs generates the Tsunami corpus: sequence pairs of the given length
// at 1% divergence (the TSU script's configuration, §4.2).
func (s *Suite) TSUPairs(count, length int) []wfagpu.Pair {
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 9))
	pairs := make([]wfagpu.Pair, count)
	for i := range pairs {
		a := gensim.RandomGenome(rng, length)
		b := mutateSeq(rng, a, 0.01)
		pairs[i] = wfagpu.Pair{A: a, B: b}
	}
	return pairs
}

// SplitGraph returns the Fig. 11 Split-M-Graph: every node longer than
// maxLen split into a chain.
func (s *Suite) SplitGraph(maxLen int) *graph.Graph {
	return graph.Split(s.Pop.Graph, maxLen)
}

func mutateSeq(rng *rand.Rand, seq []byte, rate float64) []byte {
	var out []byte
	for _, b := range seq {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, "ACGT"[rng.Intn(4)])
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, "ACGT"[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = []byte{'A'}
	}
	return out
}

package core

import (
	"bytes"
	"testing"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/pipeline"
)

// TestScenarioCharacterization is the catalog acceptance test: every
// scenario must run the Fig. 3 smoke suite (both construction pipelines)
// and map reads with all four mapping kernels, each completing with nonzero
// mapped reads. Adversarial means slower or messier — never broken.
func TestScenarioCharacterization(t *testing.T) {
	for _, sc := range gensim.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			suite, err := NewScenarioSuite(Small, sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(suite.ShortReads) == 0 || len(suite.LongReads) == 0 {
				t.Fatal("scenario produced empty read sets")
			}

			// Both construction pipelines complete on the scenario's cohort.
			tbl, err := suite.Fig3()
			if err != nil {
				t.Fatalf("Fig3: %v", err)
			}
			if len(tbl.Rows) != 2 {
				t.Fatalf("Fig3 rows = %d, want both pipelines", len(tbl.Rows))
			}

			// All four mapping kernels complete with nonzero mapped reads.
			g := suite.Pop.Graph
			// Cap the short-read workload by total bases, not count: GSSW's
			// cost grows ~quadratically with read length, and ultralong-hifi
			// makes these reads 8 kb each.
			short := suite.ShortReads[:0:0]
			for bases := 0; len(short) < len(suite.ShortReads) && len(short) < 12 && bases < 16_000; {
				r := suite.ShortReads[len(short)]
				short = append(short, r)
				bases += len(r.Seq)
			}
			vm, err := pipeline.NewVgMap(g, suite.Cfg.K, suite.Cfg.W)
			if err != nil {
				t.Fatal(err)
			}
			gf, err := pipeline.NewVgGiraffe(g, suite.Cfg.K, suite.Cfg.W)
			if err != nil {
				t.Fatal(err)
			}
			ga, err := pipeline.NewGraphAligner(g, suite.Cfg.K, suite.Cfg.W)
			if err != nil {
				t.Fatal(err)
			}
			mg, err := pipeline.NewMinigraph(g, suite.Cfg.K, suite.Cfg.W, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct {
				tool  pipeline.Tool
				reads []gensim.Read
			}{
				{vm, short}, {gf, short}, {ga, suite.LongReads}, {mg, suite.LongReads},
			} {
				mapped := 0
				for _, rd := range tc.reads {
					if res, _ := tc.tool.Map(rd.Seq, nil); res.Mapped {
						mapped++
					}
				}
				if mapped == 0 {
					t.Errorf("%s mapped 0 of %d reads under scenario %s", tc.tool.Name(), len(tc.reads), sc.Name)
				}
			}
		})
	}
}

// TestScenarioSuiteBaselineIdentity pins that the baseline scenario IS the
// stock suite: same population bytes, same reads — the control arm every
// adversarial result is read against.
func TestScenarioSuiteBaselineIdentity(t *testing.T) {
	sc, err := gensim.LookupScenario("baseline")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewScenarioSuite(Small, sc)
	if err != nil {
		t.Fatal(err)
	}
	b := getSuite(t)
	if !bytes.Equal(a.Pop.Ref, b.Pop.Ref) {
		t.Fatal("baseline scenario reference differs from NewSuite")
	}
	if len(a.ShortReads) != len(b.ShortReads) || !bytes.Equal(a.ShortReads[0].Seq, b.ShortReads[0].Seq) {
		t.Fatal("baseline scenario reads differ from NewSuite")
	}
}

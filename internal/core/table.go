package core

import (
	"fmt"
	"strings"
)

// Table is a renderable experiment result.
type Table struct {
	ID     string // experiment id, e.g. "table1", "fig6"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

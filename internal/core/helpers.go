package core

import (
	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/seqmap"
)

// pairMatches adapts build.PairMatches for corpus capture.
func pairMatches(ia int, a []byte, ib int, b []byte, k, w int) ([]build.MatchBlock, error) {
	blocks, _, err := build.PairMatches(ia, a, ib, b, k, w, nil)
	return blocks, err
}

// sswMapper wraps the Seq2Seq baseline for SSW input capture.
type sswMapper struct {
	m *seqmap.Mapper
}

func newSeqMapper(ref []byte, k, w int) (*sswMapper, error) {
	m, err := seqmap.NewMapper(ref, k, w)
	if err != nil {
		return nil, err
	}
	return &sswMapper{m: m}, nil
}

func (s *sswMapper) captureSSW(reads []gensim.Read) ([][]byte, [][]byte, error) {
	var cap seqmap.SSWCapture
	for _, r := range reads {
		s.m.Map(r.Seq, nil, &cap)
	}
	return cap.Refs, cap.Queries, nil
}

package core

import (
	"os"
	"path/filepath"
	"testing"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/gfa"
)

func TestExportDatasets(t *testing.T) {
	s := getSuite(t)
	dir := t.TempDir()
	files, err := s.ExportDatasets(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"reference.fa": true, "assemblies.fa": true,
		"short_reads.fq": true, "long_reads.fq": true, "pangenome.gfa": true,
	}
	for _, f := range files {
		delete(want, f)
	}
	if len(want) != 0 {
		t.Fatalf("missing exports: %v", want)
	}

	// Round-trip checks: the written files parse back to the same data.
	rf, err := os.Open(filepath.Join(dir, "reference.fa"))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	recs, err := bio.ReadFasta(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Seq) != len(s.Pop.Ref) {
		t.Fatalf("reference round trip failed: %d records", len(recs))
	}

	qf, err := os.Open(filepath.Join(dir, "short_reads.fq"))
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	reads, err := bio.ReadFastq(qf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != len(s.ShortReads) {
		t.Fatalf("short reads: %d != %d", len(reads), len(s.ShortReads))
	}

	gf, err := os.Open(filepath.Join(dir, "pangenome.gfa"))
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	g, err := gfa.Read(gf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != s.Pop.Graph.NumNodes() || len(g.Paths()) != len(s.Pop.Graph.Paths()) {
		t.Fatal("graph round trip failed")
	}
}

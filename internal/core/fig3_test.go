package core

import (
	"testing"
	"time"
)

// TestFig3Smoke runs the graph-building experiment end to end at small scale
// and checks that both pipelines report real stage times.
func TestFig3Smoke(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "fig3" {
		t.Fatalf("table id = %q", tbl.ID)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig3 has %d rows, want 2 (PGGB, Minigraph-Cactus)", len(tbl.Rows))
	}
	wantPipelines := []string{"PGGB", "Minigraph-Cactus"}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
		}
		if row[0] != wantPipelines[i] {
			t.Errorf("row %d pipeline = %q, want %q", i, row[0], wantPipelines[i])
		}
		// Alignment and Induction (columns 1 and 2) must be measurable.
		for _, col := range []int{1, 2} {
			d, err := time.ParseDuration(row[col])
			if err != nil {
				t.Fatalf("row %d %s = %q: %v", i, tbl.Header[col], row[col], err)
			}
			if d <= 0 {
				t.Errorf("row %d (%s) reports zero %s", i, row[0], tbl.Header[col])
			}
		}
	}
}

package build

import (
	"context"
	"fmt"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/seqwish"
)

// PGGBConfig parameterizes the PGGB pipeline model.
type PGGBConfig struct {
	// K, W select the (w,k)-minimizer scheme of the all-vs-all mapping.
	K, W int
	// Workers bounds the all-vs-all worker pool; ≤0 uses GOMAXPROCS.
	Workers int
	// PolishWindow is the smoothXG partition size in backbone bp; ≤0
	// disables the polish stage.
	PolishWindow int
	// POABand is the adaptive band half-width of the polish POA.
	POABand int
	// LayoutIterations is the PG-SGD iteration count of the visualization
	// stage; ≤0 disables layout.
	LayoutIterations int
	// LayoutSeed seeds the layout's deterministic RNG.
	LayoutSeed uint64
}

// DefaultPGGBConfig mirrors pggb defaults scaled to the benchmark datasets.
func DefaultPGGBConfig() PGGBConfig {
	return PGGBConfig{
		K:                15,
		W:                10,
		Workers:          0,
		PolishWindow:     600,
		POABand:          48,
		LayoutIterations: 4,
		LayoutSeed:       42,
	}
}

// PGGB runs the PGGB pipeline model over the named assemblies:
//
//  1. Alignment — all-vs-all pair matching (minimizer anchors refined by
//     WFA, see PairMatches) on a bounded worker pool.
//  2. Induction — seqwish: the transclosure kernel over the match blocks
//     (timed separately as TCTime) and graph induction with path embedding.
//  3. Polishing — smoothXG model: the backbone is partitioned into
//     PolishWindow-bp blocks, every assembly's projection of each block is
//     realigned with banded POA (timed as POATime) and a consensus taken.
//  4. Visualization — PG-SGD layout of the induced graph.
//
// ctx cancels the run between pipeline units of work (pairs, polish
// windows); a nil ctx behaves like context.Background(). The run is
// deterministic for fixed inputs and config, independent of Workers and
// GOMAXPROCS.
func PGGB(ctx context.Context, names []string, seqs [][]byte, cfg PGGBConfig, probe *perf.Probe) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(names) != len(seqs) || len(seqs) < 2 {
		return nil, fmt.Errorf("build: PGGB needs ≥2 named assemblies (got %d names, %d seqs)", len(names), len(seqs))
	}

	// 1. Alignment: parallel all-vs-all matching.
	var blocks []MatchBlock
	var mst PairStats
	var err error
	var alignTime time.Duration
	timeStage(&alignTime, func() {
		blocks, mst, err = AllPairMatches(ctx, seqs, cfg.K, cfg.W, cfg.Workers, probe)
	})
	if err != nil {
		return nil, err
	}
	res, err := PGGBFromMatches(ctx, names, seqs, blocks, mst, cfg, probe)
	if err != nil {
		return nil, err
	}
	res.Breakdown.Alignment = alignTime
	return res, nil
}

// PGGBFromMatches runs the PGGB pipeline downstream of the alignment stage:
// induction, polishing and layout over an already-computed set of match
// blocks (with their aggregate PairStats). This is the entry point the
// serve-mode build service uses when overlapping cohorts reuse cached
// per-pair match results — the returned Result is identical to PGGB's for
// the same blocks, except Breakdown.Alignment, which belongs to whoever
// produced the blocks.
func PGGBFromMatches(ctx context.Context, names []string, seqs [][]byte, blocks []MatchBlock, mst PairStats, cfg PGGBConfig, probe *perf.Probe) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(names) != len(seqs) || len(seqs) < 2 {
		return nil, fmt.Errorf("build: PGGB needs ≥2 named assemblies (got %d names, %d seqs)", len(names), len(seqs))
	}
	res := &Result{}
	bd := &res.Breakdown
	bd.Pipeline = "PGGB"
	res.Stats.Assemblies = len(seqs)
	res.Stats.Pairs = len(seqs) * (len(seqs) - 1) / 2
	res.Stats.MatchBlocks = mst.Blocks
	res.Stats.MatchedBases = mst.MatchedBases

	// 2. Induction: transclosure + graph emission.
	var err error
	timeStage(&bd.Induction, func() {
		var b *seqwish.Builder
		b, err = seqwish.NewBuilder(names, seqs)
		if err != nil {
			return
		}
		for _, blk := range blocks {
			if err = b.AddMatch(blk.SeqA, blk.PosA, blk.SeqB, blk.PosB, blk.Len); err != nil {
				return
			}
		}
		var tc *seqwish.TC
		timeStage(&bd.TCTime, func() { tc = b.Transclose(probe) })
		res.Stats.Closures = tc.NumClosures()
		res.Graph, err = tc.InduceGraph()
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 3. Polishing: smoothXG-style partitioned POA.
	if cfg.PolishWindow > 0 {
		timeStage(&bd.Polishing, func() {
			base := seqs[0]
			for start := 0; start < len(base); start += cfg.PolishWindow {
				if err = ctx.Err(); err != nil {
					return
				}
				end := start + cfg.PolishWindow
				if end > len(base) {
					end = len(base)
				}
				p := align.NewPOA()
				p.Band = cfg.POABand
				for _, s := range seqs {
					// Proportional projection of the backbone block onto
					// each assembly (smoothXG cuts blocks in graph space;
					// path-coordinate projection is the linear analogue).
					lo := start * len(s) / len(base)
					hi := end * len(s) / len(base)
					if hi <= lo {
						continue
					}
					t0 := time.Now()
					err = p.AddSequence(s[lo:hi], probe)
					bd.POATime += time.Since(t0)
					if err != nil {
						return
					}
				}
				res.Stats.PolishBlocks++
				res.Stats.ConsensusLen += len(p.Consensus())
			}
		})
		if err != nil {
			return nil, err
		}
	}

	// 4. Visualization: PG-SGD layout.
	if cfg.LayoutIterations > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		timeStage(&bd.Layout, func() {
			res.Layout, err = runLayout(res.Graph, cfg.LayoutIterations, cfg.LayoutSeed, probe)
		})
		if err != nil {
			return nil, err
		}
	}

	stats := res.Graph.ComputeStats()
	res.Stats.Nodes, res.Stats.Edges = stats.Nodes, stats.Edges
	return res, nil
}

package build

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pangenomicsbench/internal/graph"
)

// pathSpellings walks every embedded path and returns its reconstructed
// sequence, keyed by path name.
func pathSpellings(g *graph.Graph) map[string]string {
	out := map[string]string{}
	for _, p := range g.Paths() {
		out[p.Name] = string(g.PathSeq(p))
	}
	return out
}

// checkCollapsePreservesPaths runs collapseSiblings on g and verifies every
// haplotype path spells the same sequence byte-for-byte afterwards. Returns
// the number of nodes collapsed.
func checkCollapsePreservesPaths(t *testing.T, g *graph.Graph) int {
	t.Helper()
	before := pathSpellings(g)
	ng, collapsed, err := collapseSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("collapsed graph invalid: %v", err)
	}
	if got := ng.NumNodes(); got != g.NumNodes()-collapsed {
		t.Fatalf("collapsed graph has %d nodes, want %d - %d", got, g.NumNodes(), collapsed)
	}
	after := pathSpellings(ng)
	if len(after) != len(before) {
		t.Fatalf("collapse changed path count: %d -> %d", len(before), len(after))
	}
	for name, want := range before {
		if got, ok := after[name]; !ok {
			t.Fatalf("collapse dropped path %q", name)
		} else if got != want {
			t.Fatalf("collapse changed path %q spelling (len %d -> %d)", name, len(want), len(got))
		}
	}
	return collapsed
}

// TestCollapseSiblingsHandBuilt: a graph with two identical siblings (same
// sequence, same in-neighbor set) must merge them while every embedded
// haplotype keeps its spelling.
func TestCollapseSiblingsHandBuilt(t *testing.T) {
	g := graph.New()
	a := g.AddNode([]byte("ACGTACGT"))
	b1 := g.AddNode([]byte("TTTT")) // sibling pair: same seq, same in-set {a}
	b2 := g.AddNode([]byte("TTTT"))
	c := g.AddNode([]byte("GGGG"))
	d := g.AddNode([]byte("CCAA")) // different seq, same in-set: must survive
	if err := g.AddPath("hapA", []graph.NodeID{a, b1, c}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath("hapB", []graph.NodeID{a, b2, c}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath("hapC", []graph.NodeID{a, d, c}); err != nil {
		t.Fatal(err)
	}
	if collapsed := checkCollapsePreservesPaths(t, g); collapsed != 1 {
		t.Fatalf("collapsed %d nodes, want exactly the duplicated sibling", collapsed)
	}
}

// TestCollapseSiblingsRandomized: layered random DAGs with deliberately
// duplicated sibling nodes and many embedded walks — the differential
// property must hold on every one of them.
func TestCollapseSiblingsRandomized(t *testing.T) {
	for _, seed := range []int64{3, 11, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := graph.New()
			const layers = 6
			const width = 4
			var layerNodes [layers][]graph.NodeID
			alphabet := []string{"AC", "GT", "ACGT", "TTAA"}
			for l := 0; l < layers; l++ {
				n := 1 + rng.Intn(width)
				for i := 0; i < n; i++ {
					seq := alphabet[rng.Intn(len(alphabet))]
					layerNodes[l] = append(layerNodes[l], g.AddNode([]byte(seq)))
				}
				// Duplicate one node per layer with probability 1/2 so
				// sibling collapses actually occur.
				if rng.Intn(2) == 0 {
					dup := g.Seq(layerNodes[l][0])
					layerNodes[l] = append(layerNodes[l], g.AddNode(dup))
				}
			}
			// Random walks layer to layer become paths (and create edges).
			for w := 0; w < 12; w++ {
				var walk []graph.NodeID
				for l := 0; l < layers; l++ {
					walk = append(walk, layerNodes[l][rng.Intn(len(layerNodes[l]))])
				}
				if err := g.AddPath(fmt.Sprintf("walk%02d", w), walk); err != nil {
					t.Fatal(err)
				}
			}
			checkCollapsePreservesPaths(t, g)
		})
	}
}

// TestCollapseSiblingsOnMCGraph: the differential property on real pipeline
// output — re-running the GFAffix-style polish on a finished MC graph must
// preserve every embedded haplotype spelling. The pass now iterates to a
// fixpoint inside MC, so a second run must find nothing left to merge.
func TestCollapseSiblingsOnMCGraph(t *testing.T) {
	names, seqs := testAssemblies(t, 6000, 4)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 0
	res, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if collapsed := checkCollapsePreservesPaths(t, res.Graph); collapsed != 0 {
		t.Fatalf("MC output was not a collapse fixpoint: %d more nodes merged", collapsed)
	}
}

// TestCollapseSiblingsFixpointChain: merging b1/b2 is what makes c1/c2
// identical siblings (their in-sets become equal only after the first
// merge), so the second merge needs a second fixpoint iteration — a
// single-sweep pass collapses just one node here.
func TestCollapseSiblingsFixpointChain(t *testing.T) {
	g := graph.New()
	a := g.AddNode([]byte("ACGTACGT"))
	b1 := g.AddNode([]byte("TTTT"))
	b2 := g.AddNode([]byte("TTTT"))
	c1 := g.AddNode([]byte("GGCC"))
	c2 := g.AddNode([]byte("GGCC"))
	// Distinct tails keep c1/c2 apart under the out-neighbor key, so only
	// the post-merge in-neighbor key can unify them.
	d1 := g.AddNode([]byte("AAAA"))
	d2 := g.AddNode([]byte("CCCC"))
	if err := g.AddPath("hapA", []graph.NodeID{a, b1, c1, d1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath("hapB", []graph.NodeID{a, b2, c2, d2}); err != nil {
		t.Fatal(err)
	}
	if collapsed := checkCollapsePreservesPaths(t, g); collapsed != 2 {
		t.Fatalf("collapsed %d nodes, want 2 (b-pair, then the c-pair it exposes)", collapsed)
	}
}

// TestCollapseSiblingsByOutNeighbors: x1/x2 share sequence and out-neighbor
// set but have different in-neighbors — only the out-keyed sweep (the
// reverse orientation GFAffix also collapses) can merge them.
func TestCollapseSiblingsByOutNeighbors(t *testing.T) {
	g := graph.New()
	p := g.AddNode([]byte("ACAC"))
	q := g.AddNode([]byte("GTGT"))
	x1 := g.AddNode([]byte("TTTT"))
	x2 := g.AddNode([]byte("TTTT"))
	c := g.AddNode([]byte("GGGG"))
	if err := g.AddPath("hapP", []graph.NodeID{p, x1, c}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath("hapQ", []graph.NodeID{q, x2, c}); err != nil {
		t.Fatal(err)
	}
	if collapsed := checkCollapsePreservesPaths(t, g); collapsed != 1 {
		t.Fatalf("collapsed %d nodes, want the out-keyed sibling pair", collapsed)
	}
}

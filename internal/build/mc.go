package build

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// MCConfig parameterizes the Minigraph-Cactus pipeline model.
type MCConfig struct {
	// K, W select the (w,k)-minimizer scheme of the graph mapping.
	K, W int
	// SegmentLen segments the first assembly into backbone nodes.
	SegmentLen int
	// MapChunk splits each assembly into mapping chunks (Cactus maps
	// assemblies in pieces; it also bounds the chaining gap window).
	MapChunk int
	// MinSpan subsamples chain anchors: consecutive bridged anchors are at
	// least this many query bp apart, so GWFA bridges real gaps.
	MinSpan int
	// MinNovel is the smallest unanchored query segment that induces new
	// graph sequence.
	MinNovel int
	// Divergence is the GWFA distance/length ratio above which a bridged
	// gap is considered novel sequence rather than a match.
	Divergence float64
	// POABand is the adaptive band half-width of the induction POA.
	POABand int
	// LayoutIterations is the PG-SGD iteration count of the visualization
	// stage; ≤0 disables layout.
	LayoutIterations int
	// LayoutSeed seeds the layout's deterministic RNG.
	LayoutSeed uint64
	// Workers bounds the per-assembly chunk-mapping worker pool; ≤0 uses
	// GOMAXPROCS. The result is byte-identical for any worker count.
	Workers int

	// indexCheck, when non-nil, is invoked after every incremental index
	// update (backbone and each mapped assembly) with the growing graph and
	// the extended index — the test hook of the incremental-vs-rebuild
	// differential.
	indexCheck func(*graph.Graph, *minimizer.GraphIndex)
}

// DefaultMCConfig mirrors Minigraph-Cactus defaults scaled to the
// benchmark datasets.
func DefaultMCConfig() MCConfig {
	return MCConfig{
		K:                15,
		W:                10,
		SegmentLen:       512,
		MapChunk:         15_000,
		MinSpan:          192,
		MinNovel:         24,
		Divergence:       0.06,
		POABand:          32,
		LayoutIterations: 4,
		LayoutSeed:       42,
	}
}

// Mapping bounds of the MC model (fixed, like the PairMatches knobs).
const (
	// mcMaxOcc caps minimizer occurrences used as anchors.
	mcMaxOcc = 4
	// mcMaxChunkAnchors caps anchors per mapping chunk (deterministic
	// stride subsampling beyond it).
	mcMaxChunkAnchors = 6000
	// mcGWFACap bounds the query slice handed to one GWFA bridge call.
	mcGWFACap = 2000
	// mcMaxPOAAlternatives bounds how many existing alternatives join the
	// induction POA of one novel segment.
	mcMaxPOAAlternatives = 4
)

// planItem is one step of an assembly's walk plan: either a matched anchor
// node (node != 0) or a novel query segment [qLo,qHi) with the GWFA
// distance measured across it (-1 when the segment was never bridged).
type planItem struct {
	node     graph.NodeID
	qLo, qHi int
	dist     int
}

// MinigraphCactus runs the Minigraph-Cactus pipeline model: the first
// assembly becomes the backbone; every further assembly is mapped against
// the growing graph (minimizer anchors → graph chaining → GWFA bridging of
// inter-anchor gaps, the paper's minigraph stage), divergent or unanchored
// segments induce new nodes via POA over the segment and its existing
// alternatives (the Cactus/abPOA induction), a GFAffix-style polish pass
// collapses redundant sibling nodes, and PG-SGD lays the graph out.
//
// One minimizer index is extended incrementally across the run
// (GraphIndex.AddPath indexes only each newly embedded haplotype), so
// growth costs O(new path) per assembly instead of O(assemblies × graph)
// re-indexing. Each assembly's mapping chunks run concurrently on a
// bounded pool of cfg.Workers goroutines with a deterministic in-order
// plan merge.
//
// Stage timing: GWFA accumulates inside Alignment, POATime inside
// Induction. ctx cancels the run between assemblies and mapping chunks;
// a nil ctx behaves like context.Background(). The run is deterministic
// for fixed inputs and config, independent of Workers and GOMAXPROCS.
func MinigraphCactus(ctx context.Context, names []string, seqs [][]byte, cfg MCConfig, probe *perf.Probe) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(names) != len(seqs) || len(seqs) < 2 {
		return nil, fmt.Errorf("build: MinigraphCactus needs ≥2 named assemblies (got %d names, %d seqs)", len(names), len(seqs))
	}
	if cfg.SegmentLen <= 0 || cfg.MapChunk <= 0 || cfg.MinSpan <= 0 {
		return nil, fmt.Errorf("build: invalid MCConfig: %+v", cfg)
	}
	res := &Result{}
	bd := &res.Breakdown
	bd.Pipeline = "Minigraph-Cactus"
	res.Stats.Assemblies = len(seqs)

	// Backbone: the first assembly, segmented into nodes.
	g := graph.New()
	var err error
	timeStage(&bd.Induction, func() {
		err = g.AddPath(names[0], segmentWalk(g, seqs[0], cfg.SegmentLen))
	})
	if err != nil {
		return nil, err
	}

	// The one growing minimizer index: built over the backbone here,
	// extended with each induced haplotype path below.
	var idx *minimizer.GraphIndex
	timeStage(&bd.Alignment, func() {
		idx, err = minimizer.NewGraphIndex(g, cfg.K, cfg.W)
	})
	if err != nil {
		return nil, err
	}
	if cfg.indexCheck != nil {
		cfg.indexCheck(g, idx)
	}

	// novel buckets the induced nodes between a pair of flanking anchor
	// nodes, so later assemblies carrying the same novel sequence reuse
	// them (the "growing graph" property).
	novel := map[[2]graph.NodeID][]graph.NodeID{}

	for ai := 1; ai < len(seqs); ai++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		asm := seqs[ai]
		var plan []planItem
		step := GrowthStep{Assembly: names[ai]}

		// Alignment: map the assembly's chunks against the current graph,
		// concurrently, merging the per-chunk plans in chunk order.
		timeStage(&bd.Alignment, func() {
			plan, err = mapAssembly(ctx, g, idx, asm, cfg, &step, bd, probe)
		})
		if err != nil {
			return nil, err
		}

		// Induction: materialize the plan into graph growth and a path.
		timeStage(&bd.Induction, func() {
			t0 := time.Now()
			var walk []graph.NodeID
			last := graph.NodeID(0)
			// nextMatched[pi+1] is the first matched node at or after plan
			// index pi+1 — the right flank of novel item pi, precomputed in
			// one reverse pass instead of rescanning plan[pi+1:] per item.
			next := nextMatched(plan)
			for pi, item := range plan {
				if item.node != 0 {
					if item.node != last {
						walk = append(walk, item.node)
						last = item.node
					}
					continue
				}
				seg := asm[item.qLo:item.qHi]
				nd := induceNovel(g, novel, [2]graph.NodeID{last, next[pi+1]}, seg, cfg, bd, &res.Stats, probe)
				if nd != last {
					walk = append(walk, nd)
					last = nd
				}
			}
			if len(walk) == 0 && len(asm) > 0 {
				// Nothing in the assembly mapped or induced (e.g. it shares
				// no minimizers with the graph and is below MinNovel).
				// Induce its backbone segmentation rather than silently
				// dropping the haplotype from the graph and every later
				// index extension.
				walk = segmentWalk(g, asm, cfg.SegmentLen)
				res.Stats.FallbackPaths++
			}
			if len(walk) > 0 {
				err = g.AddPath(names[ai], walk)
			}
			step.Induction = time.Since(t0)
		})
		if err != nil {
			return nil, err
		}

		// Extend the index with just the haplotype added above.
		timeStage(&bd.Alignment, func() {
			t0 := time.Now()
			paths := g.Paths()
			err = idx.AddPath(g, paths[len(paths)-1])
			step.IndexTime = time.Since(t0)
		})
		if err != nil {
			return nil, err
		}
		if cfg.indexCheck != nil {
			cfg.indexCheck(g, idx)
		}
		res.Growth = append(res.Growth, step)
	}

	// Polishing: GFAffix-style collapse of identical sibling nodes.
	timeStage(&bd.Polishing, func() {
		g, res.Stats.Collapsed, err = collapseSiblings(g)
	})
	if err != nil {
		return nil, err
	}
	res.Graph = g

	// Visualization: PG-SGD layout.
	if cfg.LayoutIterations > 0 {
		timeStage(&bd.Layout, func() {
			res.Layout, err = runLayout(g, cfg.LayoutIterations, cfg.LayoutSeed, probe)
		})
		if err != nil {
			return nil, err
		}
	}

	stats := g.ComputeStats()
	res.Stats.Nodes, res.Stats.Edges = stats.Nodes, stats.Edges
	return res, nil
}

// segmentWalk appends asm to g as consecutive backbone segments of at most
// segLen bases and returns the walk — the backbone segmentation used for
// the first assembly and for the empty-walk fallback.
func segmentWalk(g *graph.Graph, asm []byte, segLen int) []graph.NodeID {
	var walk []graph.NodeID
	for off := 0; off < len(asm); off += segLen {
		end := off + segLen
		if end > len(asm) {
			end = len(asm)
		}
		walk = append(walk, g.AddNode(asm[off:end]))
	}
	return walk
}

// nextMatched returns, for every plan index pi, the first matched node at
// or after pi (0 when none follows), in out[pi]; out has len(plan)+1
// entries so out[pi+1] is item pi's right flank. One reverse pass replaces
// the per-novel-item forward rescan of plan[pi+1:], which was quadratic on
// plans with long novel runs.
func nextMatched(plan []planItem) []graph.NodeID {
	out := make([]graph.NodeID, len(plan)+1)
	for pi := len(plan) - 1; pi >= 0; pi-- {
		if plan[pi].node != 0 {
			out[pi] = plan[pi].node
		} else {
			out[pi] = out[pi+1]
		}
	}
	return out
}

// mapAssembly maps one assembly against the graph chunk by chunk on a
// bounded worker pool (cfg.Workers; ≤0 uses GOMAXPROCS) and merges the
// per-chunk plans in chunk order, so the merged plan is identical for any
// worker count. Per-chunk GWFA wall time is accumulated race-free into
// bd.GWFA after the pool drains; per-chunk mapping wall times land in
// step.ChunkTimes (the Fig. 5 MC-growth task costs). An instrumented run
// (probe != nil) maps serially — the probe is not safe for concurrent use.
func mapAssembly(ctx context.Context, g *graph.Graph, idx *minimizer.GraphIndex, asm []byte, cfg MCConfig, step *GrowthStep, bd *StageBreakdown, probe *perf.Probe) ([]planItem, error) {
	var chunks []int
	for chunkLo := 0; chunkLo < len(asm); chunkLo += cfg.MapChunk {
		chunks = append(chunks, chunkLo)
	}
	type chunkResult struct {
		plan []planItem
		gwfa time.Duration
		wall time.Duration
	}
	results := make([]chunkResult, len(chunks))
	runChunk := func(ci int, pr *perf.Probe) {
		chunkLo := chunks[ci]
		chunkHi := chunkLo + cfg.MapChunk
		if chunkHi > len(asm) {
			chunkHi = len(asm)
		}
		t0 := time.Now()
		plan, gwfa := mapChunk(g, idx, asm[chunkLo:chunkHi], chunkLo, cfg, pr)
		results[ci] = chunkResult{plan: plan, gwfa: gwfa, wall: time.Since(t0)}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if probe != nil || workers <= 1 {
		for ci := range chunks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runChunk(ci, probe)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(atomic.AddInt64(&next, 1)) - 1
					if ci >= len(chunks) || ctx.Err() != nil {
						return
					}
					runChunk(ci, nil)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	var plan []planItem
	for ci := range results {
		plan = append(plan, results[ci].plan...)
		bd.GWFA += results[ci].gwfa
		step.ChunkTimes = append(step.ChunkTimes, results[ci].wall)
	}
	return plan, nil
}

// mapChunk maps one assembly chunk against the graph: anchors → graph
// chaining → GWFA bridging at MinSpan stride, returning the chunk's walk
// plan in assembly coordinates (chunkLo is the chunk's offset) and the
// GWFA wall time spent bridging it.
func mapChunk(g *graph.Graph, idx *minimizer.GraphIndex, sub []byte, chunkLo int, cfg MCConfig, probe *perf.Probe) ([]planItem, time.Duration) {
	ms, err := minimizer.Compute(sub, cfg.K, cfg.W, probe)
	if err != nil {
		return nil, 0
	}
	var anchors []chain.Anchor
	for _, m := range ms {
		locs := idx.Lookup(m.Hash)
		if len(locs) > mcMaxOcc {
			locs = locs[:mcMaxOcc]
		}
		for _, loc := range locs {
			anchors = append(anchors, chain.Anchor{
				QPos: m.Pos, Node: loc.Node, Offset: loc.Offset, Len: cfg.K,
			})
		}
	}
	if len(anchors) > mcMaxChunkAnchors {
		stride := (len(anchors) + mcMaxChunkAnchors - 1) / mcMaxChunkAnchors
		kept := anchors[:0]
		for i := 0; i < len(anchors); i += stride {
			kept = append(kept, anchors[i])
		}
		anchors = kept
	}

	wholeNovel := func() []planItem {
		if len(sub) < cfg.MinNovel {
			return nil
		}
		return []planItem{{qLo: chunkLo, qHi: chunkLo + len(sub), dist: -1}}
	}
	if len(anchors) == 0 {
		return wholeNovel(), 0
	}
	chains := chain.GraphChains(g, anchors, 2*len(sub), probe)
	if len(chains) == 0 {
		return wholeNovel(), 0
	}
	best := chains[0]

	var gwfaTime time.Duration
	var plan []planItem
	first := best.Anchors[0]
	if first.QPos >= cfg.MinNovel {
		plan = append(plan, planItem{qLo: chunkLo, qHi: chunkLo + first.QPos, dist: -1})
	}
	plan = append(plan, planItem{node: first.Node})
	prev := first
	for _, cur := range best.Anchors[1:] {
		if cur.QPos-prev.QPos < cfg.MinSpan {
			continue
		}
		gapLo, gapHi := prev.QPos+prev.Len, cur.QPos
		if gapHi > gapLo {
			gseq := sub[gapLo:gapHi]
			budget := int(cfg.Divergence * float64(len(gseq)))
			t0 := time.Now()
			dist := gapDist(g, prev.Node, gseq, budget, probe)
			gwfaTime += time.Since(t0)
			if dist > budget && gapHi-gapLo >= cfg.MinNovel {
				plan = append(plan, planItem{qLo: chunkLo + gapLo, qHi: chunkLo + gapHi, dist: dist})
			}
		}
		plan = append(plan, planItem{node: cur.Node})
		prev = cur
	}
	if tail := prev.QPos + prev.Len; len(sub)-tail >= cfg.MinNovel {
		plan = append(plan, planItem{qLo: chunkLo + tail, qHi: chunkLo + len(sub), dist: -1})
	}
	return plan, gwfaTime
}

// gapDist measures the GWFA distance of the whole inter-anchor gap gseq
// starting at node start, walking the gap in mcGWFACap-sized pieces and
// resuming each piece at the exact (node, offset) where the previous one
// ended (align.GWFAAt). The divergence decision therefore covers the span
// it declares novel, instead of judging the entire gap by its first
// 2000 bp. Measurement stops early once the accumulated distance exceeds
// budget — the caller's novelty threshold — so a divergent gap costs at
// most one extra piece, keeping the old cap's cost bound; the returned
// value is then a lower bound that already decides the comparison.
func gapDist(g *graph.Graph, start graph.NodeID, gseq []byte, budget int, probe *perf.Probe) int {
	dist, off := 0, 0
	for lo := 0; lo < len(gseq); lo += mcGWFACap {
		hi := lo + mcGWFACap
		if hi > len(gseq) {
			hi = len(gseq)
		}
		piece := gseq[lo:hi]
		if r, gerr := align.GWFAAt(g, start, off, piece, probe); gerr == nil {
			dist += r.Distance
			start, off = r.EndNode, r.EndRef
		} else {
			dist += len(piece)
		}
		if dist > budget {
			break
		}
	}
	return dist
}

// induceNovel resolves one novel query segment between the flanking anchor
// nodes key[0] and key[1]: reuse an existing alternative when the segment
// is close enough (WFA check), otherwise induce a new node whose sequence
// is the POA consensus of the segment and its existing alternatives.
func induceNovel(g *graph.Graph, novel map[[2]graph.NodeID][]graph.NodeID, key [2]graph.NodeID, seg []byte, cfg MCConfig, bd *StageBreakdown, stats *Stats, probe *perf.Probe) graph.NodeID {
	for _, nd := range novel[key] {
		nseq := g.Seq(nd)
		// Only compare length-compatible alternatives.
		if len(nseq)*2 < len(seg) || len(seg)*2 < len(nseq) {
			continue
		}
		d := align.WFAEdit(seg, nseq, probe)
		span := len(seg)
		if len(nseq) > span {
			span = len(nseq)
		}
		if float64(d) <= cfg.Divergence*float64(span) {
			stats.ReusedNodes++
			return nd
		}
	}
	p := align.NewPOA()
	p.Band = cfg.POABand
	t0 := time.Now()
	alts := novel[key]
	if len(alts) > mcMaxPOAAlternatives {
		alts = alts[len(alts)-mcMaxPOAAlternatives:]
	}
	for _, nd := range alts {
		// POA errors only on empty sequences, which graph nodes never hold.
		_ = p.AddSequence(g.Seq(nd), probe)
	}
	_ = p.AddSequence(seg, probe)
	cons := p.Consensus()
	bd.POATime += time.Since(t0)
	nd := g.AddNode(cons)
	novel[key] = append(novel[key], nd)
	stats.NovelSegments++
	return nd
}

// collapseSiblings is the GFAffix-style polish pass: nodes with identical
// sequence and identical in-neighbor sets are merged, then nodes with
// identical sequence and identical out-neighbor sets (the reverse
// orientation), and the two passes iterate until no merge happens — the
// GFAffix fixpoint, since each merge can create new identical siblings one
// level downstream. Returns the polished graph and the total number of
// nodes collapsed.
//
// Merging never puts two copies of a sequence adjacent in a path: an edge
// x→y between merge candidates would require a self-loop (x ∈ in(x) or
// y ∈ out(y)), and paths only ever create edges between distinct nodes.
func collapseSiblings(g *graph.Graph) (*graph.Graph, int, error) {
	total := 0
	for {
		merged := 0
		for _, byOut := range []bool{false, true} {
			ng, m, err := collapseOnce(g, byOut)
			if err != nil {
				return nil, 0, err
			}
			g, merged, total = ng, merged+m, total+m
		}
		if merged == 0 {
			return g, total, nil
		}
	}
}

// collapseKey hashes one node's merge identity (sequence plus sorted
// neighbor set) with FNV-1a — a non-allocating composite key; candidates
// sharing a hash are verified byte-for-byte before merging.
func collapseKey(seq []byte, nbrs []graph.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range seq {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ 0xff) * prime64 // seq / neighbor-list separator
	for _, id := range nbrs {
		h = (h ^ uint64(uint32(id))) * prime64
	}
	return h
}

// collapseOnce runs one merge sweep keyed on (sequence, sorted in-neighbor
// set) — or the out-neighbor set when byOut — and rebuilds the graph with
// edges and paths remapped. Returns the (possibly unchanged) graph and the
// number of nodes collapsed.
func collapseOnce(g *graph.Graph, byOut bool) (*graph.Graph, int, error) {
	n := g.NumNodes()
	nbrsOf := func(id graph.NodeID) []graph.NodeID {
		var nb []graph.NodeID
		if byOut {
			nb = append(nb, g.Out(id)...)
		} else {
			nb = append(nb, g.In(id)...)
		}
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
		return nb
	}
	sortedNbrs := make([][]graph.NodeID, n+1)
	remap := make([]graph.NodeID, n+1)
	canon := map[uint64][]graph.NodeID{}
	collapsed := 0
	for id := graph.NodeID(1); int(id) <= n; id++ {
		sortedNbrs[id] = nbrsOf(id)
		key := collapseKey(g.Seq(id), sortedNbrs[id])
		remap[id] = id
		for _, c := range canon[key] {
			if bytes.Equal(g.Seq(c), g.Seq(id)) && nodeIDsEqual(sortedNbrs[c], sortedNbrs[id]) {
				remap[id] = c
				collapsed++
				break
			}
		}
		if remap[id] == id {
			canon[key] = append(canon[key], id)
		}
	}
	if collapsed == 0 {
		return g, 0, nil
	}

	ng := graph.New()
	newID := make([]graph.NodeID, n+1)
	for id := graph.NodeID(1); int(id) <= n; id++ {
		if remap[id] == id {
			newID[id] = ng.AddNode(g.Seq(id))
		}
	}
	for id := graph.NodeID(1); int(id) <= n; id++ {
		newID[id] = newID[remap[id]]
	}
	for id := graph.NodeID(1); int(id) <= n; id++ {
		for _, to := range g.Out(id) {
			if newID[id] != newID[to] {
				ng.AddEdge(newID[id], newID[to])
			}
		}
	}
	for _, p := range g.Paths() {
		var walk []graph.NodeID
		for _, id := range p.Nodes {
			nd := newID[id]
			if len(walk) == 0 || walk[len(walk)-1] != nd {
				walk = append(walk, nd)
			}
		}
		if err := ng.AddPath(p.Name, walk); err != nil {
			return nil, 0, err
		}
	}
	return ng, collapsed, nil
}

func nodeIDsEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

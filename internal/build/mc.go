package build

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// MCConfig parameterizes the Minigraph-Cactus pipeline model.
type MCConfig struct {
	// K, W select the (w,k)-minimizer scheme of the graph mapping.
	K, W int
	// SegmentLen segments the first assembly into backbone nodes.
	SegmentLen int
	// MapChunk splits each assembly into mapping chunks (Cactus maps
	// assemblies in pieces; it also bounds the chaining gap window).
	MapChunk int
	// MinSpan subsamples chain anchors: consecutive bridged anchors are at
	// least this many query bp apart, so GWFA bridges real gaps.
	MinSpan int
	// MinNovel is the smallest unanchored query segment that induces new
	// graph sequence.
	MinNovel int
	// Divergence is the GWFA distance/length ratio above which a bridged
	// gap is considered novel sequence rather than a match.
	Divergence float64
	// POABand is the adaptive band half-width of the induction POA.
	POABand int
	// LayoutIterations is the PG-SGD iteration count of the visualization
	// stage; ≤0 disables layout.
	LayoutIterations int
	// LayoutSeed seeds the layout's deterministic RNG.
	LayoutSeed uint64
}

// DefaultMCConfig mirrors Minigraph-Cactus defaults scaled to the
// benchmark datasets.
func DefaultMCConfig() MCConfig {
	return MCConfig{
		K:                15,
		W:                10,
		SegmentLen:       512,
		MapChunk:         15_000,
		MinSpan:          192,
		MinNovel:         24,
		Divergence:       0.06,
		POABand:          32,
		LayoutIterations: 4,
		LayoutSeed:       42,
	}
}

// Mapping bounds of the MC model (fixed, like the PairMatches knobs).
const (
	// mcMaxOcc caps minimizer occurrences used as anchors.
	mcMaxOcc = 4
	// mcMaxChunkAnchors caps anchors per mapping chunk (deterministic
	// stride subsampling beyond it).
	mcMaxChunkAnchors = 6000
	// mcGWFACap bounds the query slice handed to one GWFA bridge call.
	mcGWFACap = 2000
	// mcMaxPOAAlternatives bounds how many existing alternatives join the
	// induction POA of one novel segment.
	mcMaxPOAAlternatives = 4
)

// planItem is one step of an assembly's walk plan: either a matched anchor
// node (node != 0) or a novel query segment [qLo,qHi) with the GWFA
// distance measured across it (-1 when the segment was never bridged).
type planItem struct {
	node     graph.NodeID
	qLo, qHi int
	dist     int
}

// MinigraphCactus runs the Minigraph-Cactus pipeline model: the first
// assembly becomes the backbone; every further assembly is mapped against
// the growing graph (minimizer anchors → graph chaining → GWFA bridging of
// inter-anchor gaps, the paper's minigraph stage), divergent or unanchored
// segments induce new nodes via POA over the segment and its existing
// alternatives (the Cactus/abPOA induction), a GFAffix-style polish pass
// collapses redundant sibling nodes, and PG-SGD lays the graph out.
//
// Stage timing: GWFA accumulates inside Alignment, POATime inside
// Induction. ctx cancels the run between assemblies and mapping chunks;
// a nil ctx behaves like context.Background(). The run is deterministic
// for fixed inputs and config.
func MinigraphCactus(ctx context.Context, names []string, seqs [][]byte, cfg MCConfig, probe *perf.Probe) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(names) != len(seqs) || len(seqs) < 2 {
		return nil, fmt.Errorf("build: MinigraphCactus needs ≥2 named assemblies (got %d names, %d seqs)", len(names), len(seqs))
	}
	if cfg.SegmentLen <= 0 || cfg.MapChunk <= 0 || cfg.MinSpan <= 0 {
		return nil, fmt.Errorf("build: invalid MCConfig: %+v", cfg)
	}
	res := &Result{}
	bd := &res.Breakdown
	bd.Pipeline = "Minigraph-Cactus"
	res.Stats.Assemblies = len(seqs)

	// Backbone: the first assembly, segmented into nodes.
	g := graph.New()
	var err error
	timeStage(&bd.Induction, func() {
		var walk []graph.NodeID
		for off := 0; off < len(seqs[0]); off += cfg.SegmentLen {
			end := off + cfg.SegmentLen
			if end > len(seqs[0]) {
				end = len(seqs[0])
			}
			walk = append(walk, g.AddNode(seqs[0][off:end]))
		}
		err = g.AddPath(names[0], walk)
	})
	if err != nil {
		return nil, err
	}

	// novel buckets the induced nodes between a pair of flanking anchor
	// nodes, so later assemblies carrying the same novel sequence reuse
	// them (the "growing graph" property).
	novel := map[[2]graph.NodeID][]graph.NodeID{}

	for ai := 1; ai < len(seqs); ai++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		asm := seqs[ai]
		var plan []planItem

		// Alignment: map the assembly against the current graph.
		timeStage(&bd.Alignment, func() {
			var idx *minimizer.GraphIndex
			idx, err = minimizer.NewGraphIndex(g, cfg.K, cfg.W)
			if err != nil {
				return
			}
			for chunkLo := 0; chunkLo < len(asm); chunkLo += cfg.MapChunk {
				if err = ctx.Err(); err != nil {
					return
				}
				chunkHi := chunkLo + cfg.MapChunk
				if chunkHi > len(asm) {
					chunkHi = len(asm)
				}
				sub := asm[chunkLo:chunkHi]
				plan = append(plan, mapChunk(g, idx, sub, chunkLo, cfg, bd, probe)...)
			}
		})
		if err != nil {
			return nil, err
		}

		// Induction: materialize the plan into graph growth and a path.
		timeStage(&bd.Induction, func() {
			var walk []graph.NodeID
			last := graph.NodeID(0)
			for pi, item := range plan {
				if item.node != 0 {
					if item.node != last {
						walk = append(walk, item.node)
						last = item.node
					}
					continue
				}
				seg := asm[item.qLo:item.qHi]
				// Flanks: the previous matched node and the next one.
				next := graph.NodeID(0)
				for _, later := range plan[pi+1:] {
					if later.node != 0 {
						next = later.node
						break
					}
				}
				nd := induceNovel(g, novel, [2]graph.NodeID{last, next}, seg, cfg, bd, &res.Stats, probe)
				if nd != last {
					walk = append(walk, nd)
					last = nd
				}
			}
			if len(walk) > 0 {
				err = g.AddPath(names[ai], walk)
			}
		})
		if err != nil {
			return nil, err
		}
	}

	// Polishing: GFAffix-style collapse of identical sibling nodes.
	timeStage(&bd.Polishing, func() {
		g, res.Stats.Collapsed, err = collapseSiblings(g)
	})
	if err != nil {
		return nil, err
	}
	res.Graph = g

	// Visualization: PG-SGD layout.
	if cfg.LayoutIterations > 0 {
		timeStage(&bd.Layout, func() {
			res.Layout, err = runLayout(g, cfg.LayoutIterations, cfg.LayoutSeed, probe)
		})
		if err != nil {
			return nil, err
		}
	}

	stats := g.ComputeStats()
	res.Stats.Nodes, res.Stats.Edges = stats.Nodes, stats.Edges
	return res, nil
}

// mapChunk maps one assembly chunk against the graph: anchors → graph
// chaining → GWFA bridging at MinSpan stride, returning the chunk's walk
// plan in assembly coordinates (chunkLo is the chunk's offset).
func mapChunk(g *graph.Graph, idx *minimizer.GraphIndex, sub []byte, chunkLo int, cfg MCConfig, bd *StageBreakdown, probe *perf.Probe) []planItem {
	ms, err := minimizer.Compute(sub, cfg.K, cfg.W, probe)
	if err != nil {
		return nil
	}
	var anchors []chain.Anchor
	for _, m := range ms {
		locs := idx.Lookup(m.Hash)
		if len(locs) > mcMaxOcc {
			locs = locs[:mcMaxOcc]
		}
		for _, loc := range locs {
			anchors = append(anchors, chain.Anchor{
				QPos: m.Pos, Node: loc.Node, Offset: loc.Offset, Len: cfg.K,
			})
		}
	}
	if len(anchors) > mcMaxChunkAnchors {
		stride := (len(anchors) + mcMaxChunkAnchors - 1) / mcMaxChunkAnchors
		kept := anchors[:0]
		for i := 0; i < len(anchors); i += stride {
			kept = append(kept, anchors[i])
		}
		anchors = kept
	}

	wholeNovel := func() []planItem {
		if len(sub) < cfg.MinNovel {
			return nil
		}
		return []planItem{{qLo: chunkLo, qHi: chunkLo + len(sub), dist: -1}}
	}
	if len(anchors) == 0 {
		return wholeNovel()
	}
	chains := chain.GraphChains(g, anchors, 2*len(sub), probe)
	if len(chains) == 0 {
		return wholeNovel()
	}
	best := chains[0]

	var plan []planItem
	first := best.Anchors[0]
	if first.QPos >= cfg.MinNovel {
		plan = append(plan, planItem{qLo: chunkLo, qHi: chunkLo + first.QPos, dist: -1})
	}
	plan = append(plan, planItem{node: first.Node})
	prev := first
	for _, cur := range best.Anchors[1:] {
		if cur.QPos-prev.QPos < cfg.MinSpan {
			continue
		}
		gapLo, gapHi := prev.QPos+prev.Len, cur.QPos
		if gapHi > gapLo {
			gseq := sub[gapLo:gapHi]
			if len(gseq) > mcGWFACap {
				gseq = gseq[:mcGWFACap]
			}
			dist := len(gseq)
			t0 := time.Now()
			if r, gerr := align.GWFA(g, prev.Node, gseq, probe); gerr == nil {
				dist = r.Distance
			}
			bd.GWFA += time.Since(t0)
			if float64(dist) > cfg.Divergence*float64(len(gseq)) && gapHi-gapLo >= cfg.MinNovel {
				plan = append(plan, planItem{qLo: chunkLo + gapLo, qHi: chunkLo + gapHi, dist: dist})
			}
		}
		plan = append(plan, planItem{node: cur.Node})
		prev = cur
	}
	if tail := prev.QPos + prev.Len; len(sub)-tail >= cfg.MinNovel {
		plan = append(plan, planItem{qLo: chunkLo + tail, qHi: chunkLo + len(sub), dist: -1})
	}
	return plan
}

// induceNovel resolves one novel query segment between the flanking anchor
// nodes key[0] and key[1]: reuse an existing alternative when the segment
// is close enough (WFA check), otherwise induce a new node whose sequence
// is the POA consensus of the segment and its existing alternatives.
func induceNovel(g *graph.Graph, novel map[[2]graph.NodeID][]graph.NodeID, key [2]graph.NodeID, seg []byte, cfg MCConfig, bd *StageBreakdown, stats *Stats, probe *perf.Probe) graph.NodeID {
	for _, nd := range novel[key] {
		nseq := g.Seq(nd)
		// Only compare length-compatible alternatives.
		if len(nseq)*2 < len(seg) || len(seg)*2 < len(nseq) {
			continue
		}
		d := align.WFAEdit(seg, nseq, probe)
		span := len(seg)
		if len(nseq) > span {
			span = len(nseq)
		}
		if float64(d) <= cfg.Divergence*float64(span) {
			stats.ReusedNodes++
			return nd
		}
	}
	p := align.NewPOA()
	p.Band = cfg.POABand
	t0 := time.Now()
	alts := novel[key]
	if len(alts) > mcMaxPOAAlternatives {
		alts = alts[len(alts)-mcMaxPOAAlternatives:]
	}
	for _, nd := range alts {
		// POA errors only on empty sequences, which graph nodes never hold.
		_ = p.AddSequence(g.Seq(nd), probe)
	}
	_ = p.AddSequence(seg, probe)
	cons := p.Consensus()
	bd.POATime += time.Since(t0)
	nd := g.AddNode(cons)
	novel[key] = append(novel[key], nd)
	stats.NovelSegments++
	return nd
}

// collapseSiblings is the GFAffix-style polish pass: nodes with identical
// sequence and identical in-neighbor sets are merged (one pass, not a
// fixpoint), and the graph is rebuilt with edges and paths remapped.
// Returns the polished graph and the number of nodes collapsed.
func collapseSiblings(g *graph.Graph) (*graph.Graph, int, error) {
	n := g.NumNodes()
	remap := make([]graph.NodeID, n+1)
	canon := map[string]graph.NodeID{}
	collapsed := 0
	for id := graph.NodeID(1); int(id) <= n; id++ {
		in := append([]graph.NodeID(nil), g.In(id)...)
		sort.Slice(in, func(a, b int) bool { return in[a] < in[b] })
		key := fmt.Sprintf("%s|%v", g.Seq(id), in)
		if c, ok := canon[key]; ok {
			remap[id] = c
			collapsed++
		} else {
			canon[key] = id
			remap[id] = id
		}
	}
	if collapsed == 0 {
		return g, 0, nil
	}

	ng := graph.New()
	newID := make([]graph.NodeID, n+1)
	for id := graph.NodeID(1); int(id) <= n; id++ {
		if remap[id] == id {
			newID[id] = ng.AddNode(g.Seq(id))
		}
	}
	for id := graph.NodeID(1); int(id) <= n; id++ {
		newID[id] = newID[remap[id]]
	}
	for id := graph.NodeID(1); int(id) <= n; id++ {
		for _, to := range g.Out(id) {
			if newID[id] != newID[to] {
				ng.AddEdge(newID[id], newID[to])
			}
		}
	}
	for _, p := range g.Paths() {
		var walk []graph.NodeID
		for _, id := range p.Nodes {
			nd := newID[id]
			if len(walk) == 0 || walk[len(walk)-1] != nd {
				walk = append(walk, nd)
			}
		}
		if err := ng.AddPath(p.Name, walk); err != nil {
			return nil, 0, err
		}
	}
	return ng, collapsed, nil
}

package build

import (
	"context"
	"testing"
	"time"

	"pangenomicsbench/internal/perf"
)

func TestStageBreakdownTotal(t *testing.T) {
	b := StageBreakdown{
		Alignment: time.Second,
		Induction: 2 * time.Second,
		Polishing: 3 * time.Second,
		Layout:    4 * time.Second,
		TCTime:    time.Second, // nested, must not double-count
		POATime:   time.Second,
		GWFA:      time.Second,
	}
	if got, want := b.Total(), 10*time.Second; got != want {
		t.Fatalf("Total() = %v, want %v", got, want)
	}
}

func TestPGGBSmall(t *testing.T) {
	names, seqs := testAssemblies(t, 8000, 4)
	cfg := DefaultPGGBConfig()
	cfg.LayoutIterations = 2
	res, err := PGGB(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown
	if bd.Pipeline != "PGGB" {
		t.Fatalf("pipeline = %q", bd.Pipeline)
	}
	for _, d := range []struct {
		name string
		dur  time.Duration
	}{
		{"Alignment", bd.Alignment}, {"Induction", bd.Induction},
		{"Polishing", bd.Polishing}, {"Layout", bd.Layout},
		{"TCTime", bd.TCTime}, {"POATime", bd.POATime},
	} {
		if d.dur <= 0 {
			t.Errorf("stage %s not timed: %v", d.name, d.dur)
		}
	}
	if bd.TCTime > bd.Induction {
		t.Errorf("TC time %v exceeds its induction stage %v", bd.TCTime, bd.Induction)
	}
	if bd.POATime > bd.Polishing {
		t.Errorf("POA time %v exceeds its polishing stage %v", bd.POATime, bd.Polishing)
	}
	if res.Graph == nil || res.Layout == nil {
		t.Fatal("missing graph or layout")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("induced graph invalid: %v", err)
	}
	// seqwish induction must thread every assembly through the graph
	// losslessly.
	paths := res.Graph.Paths()
	if len(paths) != len(seqs) {
		t.Fatalf("graph has %d paths, want %d", len(paths), len(seqs))
	}
	for i, p := range paths {
		if got := string(res.Graph.PathSeq(p)); got != string(seqs[i]) {
			t.Fatalf("path %s does not spell its assembly (len %d vs %d)", p.Name, len(got), len(seqs[i]))
		}
	}
	st := res.Stats
	if st.MatchBlocks == 0 || st.Closures == 0 || st.Nodes == 0 || st.PolishBlocks == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	// Matching haplotypes must compress the graph well below the raw
	// character count.
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	if st.Closures >= total/2 {
		t.Errorf("transclosure barely compressed: %d closures from %d chars", st.Closures, total)
	}
}

func TestPGGBValidation(t *testing.T) {
	if _, err := PGGB(context.Background(), []string{"a"}, [][]byte{[]byte("ACGT")}, DefaultPGGBConfig(), nil); err == nil {
		t.Fatal("single assembly must error")
	}
	if _, err := PGGB(context.Background(), []string{"a", "b"}, [][]byte{[]byte("ACGT")}, DefaultPGGBConfig(), nil); err == nil {
		t.Fatal("name/sequence count mismatch must error")
	}
}

func TestMinigraphCactusSmall(t *testing.T) {
	names, seqs := testAssemblies(t, 8000, 4)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 2
	res, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown
	if bd.Pipeline != "Minigraph-Cactus" {
		t.Fatalf("pipeline = %q", bd.Pipeline)
	}
	if bd.Alignment <= 0 || bd.Induction <= 0 || bd.Layout <= 0 {
		t.Fatalf("stages not timed: %+v", bd)
	}
	if bd.GWFA <= 0 {
		t.Error("GWFA bridging never ran")
	}
	if bd.GWFA > bd.Alignment {
		t.Errorf("GWFA time %v exceeds its alignment stage %v", bd.GWFA, bd.Alignment)
	}
	if res.Graph == nil {
		t.Fatal("missing graph")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("grown graph invalid: %v", err)
	}
	// One embedded path per assembly: the backbone plus each mapped one.
	if got := len(res.Graph.Paths()); got != len(seqs) {
		t.Fatalf("graph has %d paths, want %d", got, len(seqs))
	}
	if res.Stats.Nodes == 0 || res.Stats.Edges == 0 {
		t.Fatalf("implausible stats: %+v", res.Stats)
	}
}

func TestMinigraphCactusDeterministic(t *testing.T) {
	names, seqs := testAssemblies(t, 6000, 3)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 0
	r1, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("MC stats differ across identical runs:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
}

func TestMinigraphCactusValidation(t *testing.T) {
	if _, err := MinigraphCactus(context.Background(), []string{"a"}, [][]byte{[]byte("ACGT")}, DefaultMCConfig(), nil); err == nil {
		t.Fatal("single assembly must error")
	}
	cfg := DefaultMCConfig()
	cfg.SegmentLen = 0
	if _, err := MinigraphCactus(context.Background(), []string{"a", "b"}, [][]byte{[]byte("ACGT"), []byte("ACGT")}, cfg, nil); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestMinigraphCactusThreadsProbe(t *testing.T) {
	names, seqs := testAssemblies(t, 4000, 3)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 1
	probe := perf.NewProbe()
	if _, err := MinigraphCactus(context.Background(), names, seqs, cfg, probe); err != nil {
		t.Fatal(err)
	}
	if probe.Instructions() == 0 {
		t.Fatal("instrumented MC run recorded no instructions")
	}
}

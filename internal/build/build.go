// Package build implements the two graph-construction pipelines the paper
// characterizes in Fig. 3: PGGB (all-to-all wfmash-style mapping → seqwish
// transclosure induction → smoothXG POA polish → ODGI PG-SGD layout) and
// Minigraph-Cactus (iterative graph growth: map each assembly against the
// growing graph with minimizer anchors and GWFA bridging, induce novel
// segments with POA, GFAffix-style polish, then layout).
//
// The package orchestrates the repo's substrates — internal/minimizer,
// internal/align (WFA, GWFA, POA), internal/seqwish, internal/layout — into
// full pipelines with a per-stage wall-time breakdown, mirroring the
// paper's stage taxonomy (Alignment, Induction, Polishing, Visualization).
// Every stage threads an optional *perf.Probe so the microarchitectural
// characterization (top-down, cache, instruction mix) covers construction
// the same way it covers the mapping kernels.
package build

import (
	"time"

	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/layout"
	"pangenomicsbench/internal/perf"
)

// StageBreakdown is the per-stage wall-clock record of one construction
// run — the Fig. 3 row. Alignment/Induction/Polishing/Layout are the four
// top-level stages; TCTime, POATime and GWFA time the kernels nested inside
// them (TC inside PGGB induction, POA inside PGGB polishing and MC
// induction, GWFA inside MC alignment).
type StageBreakdown struct {
	Pipeline string

	Alignment time.Duration
	Induction time.Duration
	Polishing time.Duration
	Layout    time.Duration

	TCTime  time.Duration
	POATime time.Duration
	GWFA    time.Duration
}

// Total sums the four top-level stages.
func (b StageBreakdown) Total() time.Duration {
	return b.Alignment + b.Induction + b.Polishing + b.Layout
}

// Stats summarizes what one construction run produced.
type Stats struct {
	Assemblies   int
	Pairs        int // PGGB: all-vs-all pairs matched
	MatchBlocks  int // PGGB: exact match blocks fed to the transclosure
	MatchedBases int // PGGB: total bases covered by match blocks
	Closures     int // PGGB: transitive-closure sets before compaction

	NovelSegments int // MC: query segments inducing new nodes
	ReusedNodes   int // MC: novel segments resolved to an existing node
	Collapsed     int // MC: sibling nodes merged by the GFAffix-style polish
	FallbackPaths int // MC: assemblies induced whole after an empty walk plan

	Nodes, Edges int // final graph size
	PolishBlocks int // POA-polished partitions
	ConsensusLen int // total polished consensus length
}

// GrowthStep is the measured cost profile of one Minigraph-Cactus growth
// step: one assembly mapped against the growing graph and induced into it.
// Chunk mapping parallelizes inside a step; induction and the incremental
// index extension are sequential; steps chain sequentially (step i+1 maps
// against the graph step i grew). These are the task costs behind the
// Fig. 5 MC-growth scaling curve.
type GrowthStep struct {
	Assembly   string
	ChunkTimes []time.Duration // per-chunk mapping wall time (parallel)
	Induction  time.Duration   // plan materialization + POA (sequential)
	IndexTime  time.Duration   // incremental index extension (sequential)
}

// Result is the output of one pipeline run.
type Result struct {
	Graph     *graph.Graph
	Layout    *layout.Layout // nil when LayoutIterations <= 0
	Breakdown StageBreakdown
	Stats     Stats
	Growth    []GrowthStep // MC only: per-assembly growth cost profile
}

// timeStage runs fn and adds its wall time to *d.
func timeStage(d *time.Duration, fn func()) {
	t0 := time.Now()
	fn()
	*d += time.Since(t0)
}

// runLayout is the shared visualization stage: PG-SGD over the final graph.
func runLayout(g *graph.Graph, iterations int, seed uint64, probe *perf.Probe) (*layout.Layout, error) {
	l, err := layout.New(g, seed)
	if err != nil {
		return nil, err
	}
	params := layout.DefaultParams(g)
	params.Iterations = iterations
	l.Run(params, probe)
	return l, nil
}

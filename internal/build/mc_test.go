package build

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
)

// indexesEqual verifies the two indexes store exactly the same hashes with
// the same ordered location lists — the byte-identical contract between
// incremental AddPath extension and a from-scratch rebuild.
func indexesEqual(t *testing.T, got, want *minimizer.GraphIndex) {
	t.Helper()
	gh, wh := got.Hashes(), want.Hashes()
	if !reflect.DeepEqual(gh, wh) {
		t.Fatalf("hash sets differ: %d incremental vs %d rebuilt", len(gh), len(wh))
	}
	for _, h := range wh {
		if !reflect.DeepEqual(got.Lookup(h), want.Lookup(h)) {
			t.Fatalf("hash %#x: locations differ:\nincremental %v\nrebuilt     %v",
				h, got.Lookup(h), want.Lookup(h))
		}
	}
}

// TestMCIncrementalIndexDifferential proves the tentpole contract: across a
// ≥6-assembly MC run, the incrementally extended index is identical (same
// hashes, same ordered locations) to a minimizer.NewGraphIndex rebuilt from
// scratch after every assembly.
func TestMCIncrementalIndexDifferential(t *testing.T) {
	names, seqs := testAssemblies(t, 9000, 6)
	if len(seqs) < 6 {
		t.Fatalf("need ≥6 assemblies, got %d", len(seqs))
	}
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 0
	checks := 0
	cfg.indexCheck = func(g *graph.Graph, idx *minimizer.GraphIndex) {
		rebuilt, err := minimizer.NewGraphIndex(g, cfg.K, cfg.W)
		if err != nil {
			t.Fatal(err)
		}
		indexesEqual(t, idx, rebuilt)
		checks++
	}
	if _, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil); err != nil {
		t.Fatal(err)
	}
	// Backbone plus one check per mapped assembly.
	if want := len(seqs); checks != want {
		t.Fatalf("differential ran %d times, want %d", checks, want)
	}
}

// gfaBytes serializes g canonically for byte-identity comparisons.
func gfaBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gfa.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMCParallelChunkDeterminism guards the parallel mapping contract: MC
// output is byte-identical across Workers 1/4/8 and arbitrary scheduling
// (run under -race in CI to exercise the pool).
func TestMCParallelChunkDeterminism(t *testing.T) {
	names, seqs := testAssemblies(t, 9000, 4)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 0
	// Small chunks so each assembly maps as several concurrent tasks.
	cfg.MapChunk = 1500
	cfg.Workers = 1
	base, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := gfaBytes(t, base.Graph)
	for _, workers := range []int{4, 8, 0} {
		cfg.Workers = workers
		got, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats != base.Stats {
			t.Fatalf("workers=%d changed stats:\n%+v\n%+v", workers, got.Stats, base.Stats)
		}
		if !bytes.Equal(gfaBytes(t, got.Graph), want) {
			t.Fatalf("workers=%d changed the constructed graph", workers)
		}
	}
	// The growth profile must cover every mapped assembly with per-chunk
	// task costs (the Fig. 5 MC-growth inputs).
	if len(base.Growth) != len(seqs)-1 {
		t.Fatalf("growth has %d steps, want %d", len(base.Growth), len(seqs)-1)
	}
	for i, st := range base.Growth {
		if len(st.ChunkTimes) == 0 || st.Induction <= 0 {
			t.Fatalf("growth step %d not measured: %+v", i, st)
		}
	}
}

// TestMCEmptyWalkFallback pins the silent-path-loss regression: an assembly
// that shares no minimizers with the backbone and is too short to induce a
// novel segment used to vanish from the graph's haplotype set entirely. It
// must now be induced whole via its backbone segmentation.
func TestMCEmptyWalkFallback(t *testing.T) {
	names, seqs := testAssemblies(t, 6000, 3)
	// Shorter than K (and MinNovel): yields no minimizers, no anchors, and
	// no whole-chunk novel segment — an empty walk plan on the old code.
	tiny := []byte("ACGTACGTAC")
	names = append(names, "tinyasm")
	seqs = append(seqs, tiny)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 0
	res, err := MinigraphCactus(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	paths := res.Graph.Paths()
	if len(paths) != len(seqs) {
		t.Fatalf("graph has %d paths, want %d (assembly lost)", len(paths), len(seqs))
	}
	found := false
	for _, p := range paths {
		if p.Name == "tinyasm" {
			found = true
			if got := string(res.Graph.PathSeq(p)); got != string(tiny) {
				t.Fatalf("fallback path spells %q, want %q", got, tiny)
			}
		}
	}
	if !found {
		t.Fatal("tinyasm path missing from the graph")
	}
	if res.Stats.FallbackPaths != 1 {
		t.Fatalf("FallbackPaths = %d, want 1", res.Stats.FallbackPaths)
	}
}

// randSeqMC returns a deterministic random ACGT sequence.
func randSeqMC(rng *rand.Rand, n int) []byte {
	const bases = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

// flipBase substitutes a base deterministically (A↔C, G↔T).
func flipBase(b byte) byte {
	switch b {
	case 'A':
		return 'C'
	case 'C':
		return 'A'
	case 'G':
		return 'T'
	default:
		return 'G'
	}
}

// TestMCGapDivergenceScaledToSpan pins the GWFA-cap mismatch: a >2000 bp
// inter-anchor gap that is ~99% identical to the graph overall, with its
// edits concentrated inside the first 2000 bp, used to be declared novel in
// its entirety because the divergence test judged the whole gap by the
// truncated prefix's distance. The piecewise measurement must keep it
// matched.
func TestMCGapDivergenceScaledToSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	backbone := randSeqMC(rng, 12_000)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 0
	// Large MinSpan keeps bridged anchors ≥5000 bp apart, so the bridged
	// gap exceeds the 2000 bp GWFA cap even though anchors are dense.
	cfg.MinSpan = 5000

	g := graph.New()
	if err := g.AddPath("backbone", segmentWalk(g, backbone, cfg.SegmentLen)); err != nil {
		t.Fatal(err)
	}
	idx, err := minimizer.NewGraphIndex(g, cfg.K, cfg.W)
	if err != nil {
		t.Fatal(err)
	}

	// Assembly chunk: the backbone with ~160 substitutions concentrated in
	// [600, 1900) — ~8% divergence over the capped 2000 bp prefix of the
	// first bridged gap, but only ~3% over the ≥5000 bp gap itself.
	asm := append([]byte(nil), backbone...)
	edits := 0
	for pos := 600; pos < 1900; pos += 8 {
		asm[pos] = flipBase(asm[pos])
		edits++
	}
	if edits < 150 {
		t.Fatalf("only %d edits planted", edits)
	}

	plan, _ := mapChunk(g, idx, asm, 0, cfg, nil)
	if len(plan) == 0 {
		t.Fatal("chunk produced no plan")
	}
	for _, item := range plan {
		if item.node != 0 {
			continue
		}
		if item.qLo < 1900 && item.qHi > 600 {
			t.Fatalf("novel segment [%d,%d) overlaps the ~1%%-divergent gap: the prefix-capped divergence test misdeclared it", item.qLo, item.qHi)
		}
	}
}

// TestNextMatchedDifferential checks the precomputed next-flank array
// against the naive forward rescan it replaced, on randomized plans with
// long novel runs.
func TestNextMatchedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		plan := make([]planItem, rng.Intn(200))
		for i := range plan {
			// Long novel runs: matched nodes are sparse.
			if rng.Intn(10) == 0 {
				plan[i].node = graph.NodeID(1 + rng.Intn(50))
			}
		}
		next := nextMatched(plan)
		if len(next) != len(plan)+1 {
			t.Fatalf("trial %d: next has %d entries, want %d", trial, len(next), len(plan)+1)
		}
		for pi := range plan {
			want := graph.NodeID(0)
			for _, later := range plan[pi+1:] {
				if later.node != 0 {
					want = later.node
					break
				}
			}
			if next[pi+1] != want {
				t.Fatalf("trial %d: next[%d+1] = %d, naive scan = %d", trial, pi, next[pi+1], want)
			}
		}
	}
}

// BenchmarkNextMatchedLongNovelRun guards the O(n) flank precompute on the
// worst case of the old quadratic rescan: one long run of novel items.
func BenchmarkNextMatchedLongNovelRun(b *testing.B) {
	plan := make([]planItem, 100_000)
	plan[len(plan)-1].node = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := nextMatched(plan); out[0] != 1 {
			b.Fatal("wrong flank")
		}
	}
}

// TestMCContextCancelParallel: a canceled context aborts a parallel-chunk
// run promptly with ctx.Err().
func TestMCContextCancelParallel(t *testing.T) {
	names, seqs := testAssemblies(t, 8000, 4)
	cfg := DefaultMCConfig()
	cfg.LayoutIterations = 0
	cfg.MapChunk = 1000
	cfg.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinigraphCactus(ctx, names, seqs, cfg, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A short deadline mid-run must also surface the context error.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	time.Sleep(2 * time.Millisecond)
	if _, err := MinigraphCactus(ctx2, names, seqs, cfg, nil); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestGapDistMeasuresWholeGap: gapDist resumes across cap-sized pieces, so
// an identical long gap measures ~0 while the old prefix-only measurement
// would stop at the cap.
func TestGapDistMeasuresWholeGap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seq := randSeqMC(rng, 9000)
	g := graph.New()
	walk := segmentWalk(g, seq, 512)
	if err := g.AddPath("p", walk); err != nil {
		t.Fatal(err)
	}
	// The whole sequence as a gap from its first node: near-zero distance
	// even though it spans >4 cap pieces.
	d := gapDist(g, walk[0], seq, len(seq), nil)
	if d > len(seq)/100 {
		t.Fatalf("identical 9 kbp gap measured distance %d", d)
	}
	// A divergent gap stops early but still exceeds the budget.
	div := randSeqMC(rng, 9000)
	budget := 9000 * 6 / 100
	if d := gapDist(g, walk[0], div, budget, nil); d <= budget {
		t.Fatalf("random 9 kbp gap measured distance %d, want > %d", d, budget)
	}
}

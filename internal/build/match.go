package build

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// MatchBlock is one exact match between two input sequences in the
// PAF-like form the seqwish transclosure ingests:
// seqs[SeqA][PosA:PosA+Len] == seqs[SeqB][PosB:PosB+Len] byte for byte.
type MatchBlock struct {
	SeqA, PosA int
	SeqB, PosB int
	Len        int
}

// PairStats summarizes one pair-matching run.
type PairStats struct {
	Anchors      int // shared-minimizer anchors (k-mer verified)
	Windows      int // candidate homology windows formed from anchor bands
	WindowsKept  int // windows whose WFA-estimated identity passed the filter
	Blocks       int // exact match blocks emitted
	MatchedBases int // sum of block lengths
	MinimizeTime time.Duration
	WFATime      time.Duration
}

// Add merges o into s (the all-vs-all aggregate; serve-mode also uses it
// to aggregate cached per-pair stats).
func (s *PairStats) Add(o PairStats) {
	s.Anchors += o.Anchors
	s.Windows += o.Windows
	s.WindowsKept += o.WindowsKept
	s.Blocks += o.Blocks
	s.MatchedBases += o.MatchedBases
	s.MinimizeTime += o.MinimizeTime
	s.WFATime += o.WFATime
}

// Matching knobs of the wfmash stand-in. These are fixed constants rather
// than per-call parameters so PairMatches keeps the narrow signature the
// corpus-capture path uses.
const (
	// maxAnchorOcc caps how many occurrences of one minimizer hash seed
	// anchors (wfmash's repeat filtering).
	maxAnchorOcc = 8
	// diagBand groups anchors into one candidate window when their
	// diagonals are within this many bases (mashmap's mapping band).
	diagBand = 128
	// windowGap breaks a window when consecutive anchors are further apart
	// than this on sequence A.
	windowGap = 2048
	// maxDivergence rejects candidate windows whose WFA-refined divergence
	// exceeds it (wfmash's identity threshold, roughly 1-p of pggb -p).
	maxDivergence = 0.25
	// refineCap bounds the window slice handed to the WFA refinement; long
	// windows are identity-estimated from their prefix, as mashmap
	// estimates identity from sampled sketches rather than full alignment.
	refineCap = 4096
)

// anchorPair is one shared minimizer occurrence: a[pa:pa+k] == b[pb:pb+k].
type anchorPair struct {
	pa, pb int
}

// PairMatches finds the exact match blocks between sequences a and b — the
// wfmash-style mapping stage of PGGB. Shared (w,k)-minimizers seed anchors
// (verified byte-wise, so hash collisions never produce false matches),
// anchors are grouped by diagonal band into candidate homology windows
// (mashmap-style), each window's identity is refined with WFA, and accepted
// windows emit maximal exact match blocks around their anchors. ia and ib
// are the sequence indices stamped into the returned blocks.
//
// The result is deterministic for fixed inputs: blocks are emitted in
// sorted (PosA, PosB) order. The second return value reports matching
// statistics.
func PairMatches(ia int, a []byte, ib int, b []byte, k, w int, probe *perf.Probe) ([]MatchBlock, PairStats, error) {
	var st PairStats
	if len(a) == 0 || len(b) == 0 {
		return nil, st, fmt.Errorf("build: PairMatches needs non-empty sequences (len a=%d, b=%d)", len(a), len(b))
	}
	tMin := time.Now()
	ma, err := minimizer.Compute(a, k, w, probe)
	if err != nil {
		return nil, st, err
	}
	mb, err := minimizer.Compute(b, k, w, probe)
	if err != nil {
		return nil, st, err
	}
	st.MinimizeTime = time.Since(tMin)

	// Index A's minimizers, capped per hash (repeat filter).
	occ := make(map[uint64][]int, len(ma))
	for _, m := range ma {
		if locs := occ[m.Hash]; len(locs) < maxAnchorOcc {
			occ[m.Hash] = append(locs, m.Pos)
		}
	}

	// Anchors: B's minimizers looked up in A, k-mer verified.
	var anchors []anchorPair
	for _, m := range mb {
		for _, pa := range occ[m.Hash] {
			probe.Load(uintptr(0x400000)+uintptr(pa), 8)
			if bytes.Equal(a[pa:pa+k], b[m.Pos:m.Pos+k]) {
				probe.TakeBranch(0x40, true)
				anchors = append(anchors, anchorPair{pa: pa, pb: m.Pos})
			} else {
				probe.TakeBranch(0x40, false)
			}
			probe.Op(perf.ScalarInt, 4)
		}
	}
	st.Anchors = len(anchors)
	if len(anchors) == 0 {
		return nil, st, nil
	}

	// Sort by (diagonal, posA) and split into banded candidate windows.
	sort.Slice(anchors, func(i, j int) bool {
		di, dj := anchors[i].pa-anchors[i].pb, anchors[j].pa-anchors[j].pb
		if di != dj {
			return di < dj
		}
		if anchors[i].pa != anchors[j].pa {
			return anchors[i].pa < anchors[j].pa
		}
		return anchors[i].pb < anchors[j].pb
	})

	var blocks []MatchBlock
	covered := make(map[int]int) // diagonal → exclusive end of last block on it

	winStart := 0
	flush := func(winEnd int) {
		if winEnd <= winStart {
			return
		}
		st.Windows++
		win := anchors[winStart:winEnd]
		// Window span on both sequences.
		aLo, aHi := win[0].pa, win[0].pa+k
		bLo, bHi := win[0].pb, win[0].pb+k
		for _, an := range win[1:] {
			if an.pa < aLo {
				aLo = an.pa
			}
			if an.pa+k > aHi {
				aHi = an.pa + k
			}
			if an.pb < bLo {
				bLo = an.pb
			}
			if an.pb+k > bHi {
				bHi = an.pb + k
			}
		}
		// WFA refinement: estimate the window's divergence; reject
		// windows that are homologous-looking by chance.
		ra, rb := a[aLo:aHi], b[bLo:bHi]
		if len(ra) > refineCap {
			ra = ra[:refineCap]
		}
		if len(rb) > refineCap {
			rb = rb[:refineCap]
		}
		t0 := time.Now()
		d := align.WFAEdit(ra, rb, probe)
		st.WFATime += time.Since(t0)
		span := len(ra)
		if len(rb) > span {
			span = len(rb)
		}
		if float64(d) > maxDivergence*float64(span) {
			return
		}
		st.WindowsKept++
		// Emit maximal exact blocks around each anchor, at most one block
		// per diagonal region (covered tracks per-diagonal progress).
		for _, an := range win {
			diag := an.pa - an.pb
			if end, ok := covered[diag]; ok && an.pa < end {
				probe.TakeBranch(0x41, false)
				continue // inside a block already emitted on this diagonal
			}
			probe.TakeBranch(0x41, true)
			start := an.pa
			lim := covered[diag]
			for start > lim && start-diag > 0 && a[start-1] == b[start-1-diag] {
				start--
			}
			end := an.pa + k
			for end < len(a) && end-diag < len(b) && a[end] == b[end-diag] {
				end++
			}
			probe.Op(perf.ScalarInt, 2*(end-start-k)+6)
			if end-start < k {
				continue
			}
			covered[diag] = end
			blocks = append(blocks, MatchBlock{
				SeqA: ia, PosA: start,
				SeqB: ib, PosB: start - diag,
				Len: end - start,
			})
		}
	}
	for i := 1; i < len(anchors); i++ {
		sameBand := anchors[i].pa-anchors[i].pb-(anchors[winStart].pa-anchors[winStart].pb) <= diagBand
		closeBy := anchors[i].pa-anchors[i-1].pa <= windowGap
		if !sameBand || !closeBy {
			flush(i)
			winStart = i
		}
	}
	flush(len(anchors))

	// Canonical order: by A position, then B position.
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].PosA != blocks[j].PosA {
			return blocks[i].PosA < blocks[j].PosA
		}
		return blocks[i].PosB < blocks[j].PosB
	})
	st.Blocks = len(blocks)
	for _, blk := range blocks {
		st.MatchedBases += blk.Len
	}
	return blocks, st, nil
}

// AllPairMatches runs PairMatches over every unordered pair (i<j) of seqs
// on a bounded worker pool of `workers` goroutines (≤0 uses GOMAXPROCS) —
// the quadratic all-vs-all homology search that dominates PGGB's alignment
// stage. Pairs are distributed dynamically but results are merged in
// canonical pair order ((0,1), (0,2), …, (n-2,n-1)), so the returned block
// slice is identical regardless of worker count or scheduling.
//
// ctx cancels the search between pairs: a canceled context returns
// ctx.Err() without waiting for the remaining pairs (serve-mode request
// timeouts ride on this). A nil ctx behaves like context.Background().
//
// The perf probe is not safe for concurrent use, so an instrumented run
// (probe != nil) executes the pairs serially — the same rule the kernel
// registry applies to instrumented kernel runs.
func AllPairMatches(ctx context.Context, seqs [][]byte, k, w, workers int, probe *perf.Probe) ([]MatchBlock, PairStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(seqs)
	type pairJob struct{ i, j int }
	var jobs []pairJob
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jobs = append(jobs, pairJob{i, j})
		}
	}
	results := make([][]MatchBlock, len(jobs))
	stats := make([]PairStats, len(jobs))
	errs := make([]error, len(jobs))

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if probe != nil || workers <= 1 {
		for ji, job := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, PairStats{}, err
			}
			results[ji], stats[ji], errs[ji] = PairMatches(job.i, seqs[job.i], job.j, seqs[job.j], k, w, probe)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ji := int(atomic.AddInt64(&next, 1)) - 1
					if ji >= len(jobs) || ctx.Err() != nil {
						return
					}
					job := jobs[ji]
					results[ji], stats[ji], errs[ji] = PairMatches(job.i, seqs[job.i], job.j, seqs[job.j], k, w, nil)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, PairStats{}, err
		}
	}

	var out []MatchBlock
	var agg PairStats
	for ji := range jobs {
		if errs[ji] != nil {
			return nil, agg, errs[ji]
		}
		out = append(out, results[ji]...)
		agg.Add(stats[ji])
	}
	return out, agg, nil
}

package build

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/perf"
)

// testAssemblies simulates a small cohort and returns its assembly view.
func testAssemblies(t testing.TB, refLen, haps int) ([]string, [][]byte) {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = refLen
	cfg.Haplotypes = haps
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names, seqs := pop.AssemblyView()
	return names, seqs
}

func TestPairMatchesIdenticalSequences(t *testing.T) {
	_, seqs := testAssemblies(t, 5000, 2)
	a := seqs[0]
	blocks, st, err := PairMatches(0, a, 1, a, 15, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("identical sequences produced no match blocks")
	}
	// Identical inputs must match nearly end to end on the main diagonal.
	covered := 0
	for _, b := range blocks {
		if b.PosA == b.PosB {
			covered += b.Len
		}
	}
	if covered < len(a)*9/10 {
		t.Fatalf("main-diagonal coverage %d of %d too low", covered, len(a))
	}
	if st.Blocks != len(blocks) || st.MatchedBases == 0 {
		t.Fatalf("inconsistent stats: %+v vs %d blocks", st, len(blocks))
	}
}

func TestPairMatchesBlocksAreExactAndSorted(t *testing.T) {
	_, seqs := testAssemblies(t, 8000, 4)
	a, b := seqs[0], seqs[1]
	blocks, st, err := PairMatches(0, a, 1, b, 15, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("similar haplotypes produced no match blocks")
	}
	sum := 0
	for i, blk := range blocks {
		if blk.SeqA != 0 || blk.SeqB != 1 {
			t.Fatalf("block %d has wrong sequence indices: %+v", i, blk)
		}
		if !bytes.Equal(a[blk.PosA:blk.PosA+blk.Len], b[blk.PosB:blk.PosB+blk.Len]) {
			t.Fatalf("block %d is not an exact match: %+v", i, blk)
		}
		if i > 0 {
			p, q := blocks[i-1], blk
			if p.PosA > q.PosA || (p.PosA == q.PosA && p.PosB > q.PosB) {
				t.Fatalf("blocks not in (PosA, PosB) order at %d: %+v then %+v", i, p, q)
			}
		}
		sum += blk.Len
	}
	if st.MatchedBases != sum {
		t.Fatalf("MatchedBases %d != block sum %d", st.MatchedBases, sum)
	}
	if st.Anchors == 0 || st.Windows == 0 || st.WindowsKept == 0 {
		t.Fatalf("stats show no matching work: %+v", st)
	}
}

func TestPairMatchesDeterministic(t *testing.T) {
	_, seqs := testAssemblies(t, 6000, 2)
	b1, _, err := PairMatches(3, seqs[0], 7, seqs[1], 15, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := PairMatches(3, seqs[0], 7, seqs[1], 15, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("PairMatches is not deterministic for fixed inputs")
	}
}

func TestPairMatchesThreadsProbe(t *testing.T) {
	_, seqs := testAssemblies(t, 4000, 2)
	probe := perf.NewProbe()
	if _, _, err := PairMatches(0, seqs[0], 1, seqs[1], 15, 10, probe); err != nil {
		t.Fatal(err)
	}
	if probe.Instructions() == 0 {
		t.Fatal("instrumented PairMatches recorded no instructions")
	}
}

func TestPairMatchesRejectsEmpty(t *testing.T) {
	if _, _, err := PairMatches(0, nil, 1, []byte("ACGT"), 15, 10, nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, _, err := PairMatches(0, []byte("ACGT"), 1, []byte("ACGT"), 0, 10, nil); err == nil {
		t.Fatal("invalid k must error")
	}
}

// TestAllPairMatchesWorkerInvariance guards the documented contract: the
// merged block slice is identical regardless of worker count and
// GOMAXPROCS (run under -race in CI to exercise the pool).
func TestAllPairMatchesWorkerInvariance(t *testing.T) {
	_, seqs := testAssemblies(t, 6000, 4)
	want, wantStats, err := AllPairMatches(context.Background(), seqs, 15, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no blocks from all-vs-all matching")
	}
	for _, workers := range []int{2, 3, 8, 0} {
		got, gotStats, err := AllPairMatches(context.Background(), seqs, 15, 10, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d changed the merged block order/content", workers)
		}
		// Wall time varies; every counted stat must not.
		gotStats.WFATime, wantStats.WFATime = 0, 0
		gotStats.MinimizeTime, wantStats.MinimizeTime = 0, 0
		if gotStats != wantStats {
			t.Fatalf("workers=%d changed aggregate stats: %+v vs %+v", workers, gotStats, wantStats)
		}
	}
	// GOMAXPROCS must not matter either.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	got, _, err := AllPairMatches(context.Background(), seqs, 15, 10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("GOMAXPROCS=1 changed the merged blocks")
	}
	// An instrumented (serial) run matches the parallel result.
	got, _, err = AllPairMatches(context.Background(), seqs, 15, 10, 4, perf.NewProbe())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("instrumented run changed the merged blocks")
	}
}

package bio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodeBase(t *testing.T) {
	cases := map[byte]byte{'A': BaseA, 'c': BaseC, 'G': BaseG, 't': BaseT, 'N': BaseN, 'X': BaseN, 'u': BaseT}
	for b, want := range cases {
		if got := Code(b); got != want {
			t.Errorf("Code(%q) = %d, want %d", b, got, want)
		}
	}
	for c := byte(0); c < 4; c++ {
		if Code(Base(c)) != c {
			t.Errorf("Code(Base(%d)) != %d", c, c)
		}
	}
	if Base(9) != 'N' {
		t.Error("out-of-range code must decode to N")
	}
}

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("ACGTN"))
	if string(got) != "NACGT" {
		t.Fatalf("ReverseComplement = %q", got)
	}
	in := []byte("ACGTT")
	ReverseComplementInPlace(in)
	if string(in) != "AACGT" {
		t.Fatalf("in place = %q", in)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := randomizeToDNA(raw)
		return bytes.Equal(ReverseComplement(ReverseComplement(seq)), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		seq := randomizeToDNA(raw)
		return bytes.Equal(Decode2Bit(Encode2Bit(seq)), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]byte("ACGTNacgtn")); err != nil {
		t.Fatalf("valid DNA rejected: %v", err)
	}
	if err := Validate([]byte("ACGQ")); err == nil {
		t.Fatal("invalid base accepted")
	}
}

func TestGC(t *testing.T) {
	if got := GC([]byte("GGCC")); got != 1 {
		t.Fatalf("GC = %v", got)
	}
	if got := GC([]byte("AATT")); got != 0 {
		t.Fatalf("GC = %v", got)
	}
	if got := GC(nil); got != 0 {
		t.Fatalf("GC(nil) = %v", got)
	}
}

func TestPackedRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		seq := bytes.ToUpper(randomizeToDNAWithN(raw))
		p := Pack(seq)
		if p.Len() != len(seq) {
			return false
		}
		return bytes.Equal(p.Unpack(), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackedSlice(t *testing.T) {
	p := Pack([]byte("ACGTACGTN"))
	if got := string(p.Slice(2, 6)); got != "GTAC" {
		t.Fatalf("Slice = %q", got)
	}
	if got := p.At(8); got != 'N' {
		t.Fatalf("At(8) = %q, want N", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice must panic")
		}
	}()
	p.Slice(5, 100)
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "chr1", Desc: "test contig", Seq: []byte("ACGTACGTACGTACGT")},
		{Name: "chr2", Seq: []byte("TTTT")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 7); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "chr1" || got[0].Desc != "test contig" ||
		string(got[0].Seq) != "ACGTACGTACGTACGT" || string(got[1].Seq) != "TTTT" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFastaErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",            // data before header
		">\nACGT\n",         // empty header
		">x\nHELLO WORLD\n", // non-DNA
	}
	for _, in := range cases {
		if _, err := ReadFasta(strings.NewReader(in)); err == nil {
			t.Errorf("ReadFasta(%q) accepted invalid input", in)
		}
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "r1", Seq: []byte("ACGT"), Qual: []byte("IIII")},
		{Name: "r2", Desc: "mate", Seq: []byte("GG"), Qual: []byte("#!")},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "r1" || string(got[1].Qual) != "#!" || got[1].Desc != "mate" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFastqErrors(t *testing.T) {
	cases := []string{
		"@x\nACGT\n+\nII\n", // qual length mismatch
		"@x\nACGT\n",        // truncated
		"x\nACGT\n+\nIIII\n",
		"@x\nACGT\nIIII\nIIII\n", // missing +
	}
	for _, in := range cases {
		if _, err := ReadFastq(strings.NewReader(in)); err == nil {
			t.Errorf("ReadFastq(%q) accepted invalid input", in)
		}
	}
}

func TestScoring(t *testing.T) {
	s := DefaultScoring
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Substitution('A', 'a') != s.Match {
		t.Fatal("case-insensitive match failed")
	}
	if s.Substitution('A', 'C') != -s.Mismatch {
		t.Fatal("mismatch score wrong")
	}
	if s.Substitution('N', 'N') != -s.Mismatch {
		t.Fatal("N must never match")
	}
	bad := Scoring{Match: 0}
	if bad.Validate() == nil {
		t.Fatal("zero match bonus accepted")
	}
	m := s.Matrix()
	if m[0] != int8(s.Match) || m[1] != int8(-s.Mismatch) || m[4*5+4] != int8(-s.Mismatch) {
		t.Fatal("matrix layout wrong")
	}
}

func TestCigar(t *testing.T) {
	var c Cigar
	c = c.Append(CigarEq, 5)
	c = c.Append(CigarEq, 3) // merges
	c = c.Append(CigarX, 1)
	c = c.Append(CigarDel, 2)
	c = c.Append(CigarIns, 4)
	c = c.Append(CigarMatch, 0) // no-op
	if got := c.String(); got != "8=1X2D4I" {
		t.Fatalf("String = %q", got)
	}
	if c.QueryLen() != 13 || c.RefLen() != 11 {
		t.Fatalf("lens = %d/%d", c.QueryLen(), c.RefLen())
	}
	if c.EditDistance() != 7 {
		t.Fatalf("edit distance = %d", c.EditDistance())
	}
	parsed, err := ParseCigar("8=1X2D4I")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != c.String() {
		t.Fatal("parse round trip failed")
	}
	for _, bad := range []string{"5", "Z", "3Z", "=5"} {
		if _, err := ParseCigar(bad); err == nil {
			t.Errorf("ParseCigar(%q) accepted invalid input", bad)
		}
	}
}

func TestCigarReverse(t *testing.T) {
	c := Cigar{{CigarEq, 1}, {CigarX, 2}, {CigarDel, 3}}
	c.Reverse()
	if c.String() != "3D2X1=" {
		t.Fatalf("Reverse = %q", c)
	}
}

// randomizeToDNA maps arbitrary bytes onto ACGT.
func randomizeToDNA(raw []byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = Base(b & 3)
	}
	return out
}

func randomizeToDNAWithN(raw []byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		if b%17 == 0 {
			out[i] = 'N'
		} else {
			out[i] = Base(b & 3)
		}
	}
	return out
}

func BenchmarkReverseComplement(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := make([]byte, 10000)
	for i := range seq {
		seq[i] = Base(byte(rng.Intn(4)))
	}
	b.SetBytes(int64(len(seq)))
	for i := 0; i < b.N; i++ {
		ReverseComplementInPlace(seq)
	}
}

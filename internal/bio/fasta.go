package bio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Record is a named sequence, optionally with per-base qualities (FASTQ).
type Record struct {
	Name string // identifier up to the first whitespace
	Desc string // remainder of the header line, if any
	Seq  []byte
	Qual []byte // nil for FASTA records
}

// ReadFasta parses FASTA records from r. It accepts multi-line sequences and
// blank lines between records.
func ReadFasta(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<28)
	var recs []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimRight(sc.Bytes(), "\r\n ")
		if len(text) == 0 {
			continue
		}
		if text[0] == '>' {
			recs = append(recs, Record{})
			cur = &recs[len(recs)-1]
			cur.Name, cur.Desc = splitHeader(string(text[1:]))
			if cur.Name == "" {
				return nil, fmt.Errorf("bio: line %d: empty FASTA header", line)
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("bio: line %d: sequence data before first FASTA header", line)
		}
		if !IsDNA(text) {
			return nil, fmt.Errorf("bio: line %d: non-DNA characters in sequence %q", line, cur.Name)
		}
		cur.Seq = append(cur.Seq, text...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bio: reading FASTA: %w", err)
	}
	return recs, nil
}

// WriteFasta writes records in FASTA format with the given line width
// (width <= 0 means a single line per sequence).
func WriteFasta(w io.Writer, recs []Record, width int) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if rec.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", rec.Name, rec.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", rec.Name)
		}
		seq := rec.Seq
		if width <= 0 {
			bw.Write(seq)
			bw.WriteByte('\n')
			continue
		}
		for len(seq) > 0 {
			n := width
			if n > len(seq) {
				n = len(seq)
			}
			bw.Write(seq[:n])
			bw.WriteByte('\n')
			seq = seq[n:]
		}
	}
	return bw.Flush()
}

// ReadFastq parses FASTQ records from r. Sequences and qualities must be
// single-line (the common modern convention).
func ReadFastq(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<28)
	var recs []Record
	line := 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			line++
			t := bytes.TrimRight(sc.Bytes(), "\r\n")
			if len(t) > 0 {
				out := make([]byte, len(t))
				copy(out, t)
				return out, true
			}
		}
		return nil, false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if hdr[0] != '@' {
			return nil, fmt.Errorf("bio: line %d: FASTQ header must start with '@'", line)
		}
		seq, ok := next()
		if !ok {
			return nil, fmt.Errorf("bio: line %d: truncated FASTQ record", line)
		}
		plus, ok := next()
		if !ok || plus[0] != '+' {
			return nil, fmt.Errorf("bio: line %d: expected '+' separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("bio: line %d: missing FASTQ quality line", line)
		}
		if len(qual) != len(seq) {
			return nil, fmt.Errorf("bio: line %d: quality length %d != sequence length %d", line, len(qual), len(seq))
		}
		var rec Record
		rec.Name, rec.Desc = splitHeader(string(hdr[1:]))
		rec.Seq, rec.Qual = seq, qual
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bio: reading FASTQ: %w", err)
	}
	return recs, nil
}

// WriteFastq writes records in FASTQ format. Records without qualities get
// a constant quality of 'I' (Q40).
func WriteFastq(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if rec.Desc != "" {
			fmt.Fprintf(bw, "@%s %s\n%s\n+\n%s\n", rec.Name, rec.Desc, rec.Seq, qual)
		} else {
			fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual)
		}
	}
	return bw.Flush()
}

func splitHeader(h string) (name, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

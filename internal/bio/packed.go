package bio

import "fmt"

// Packed is a 2-bit-packed DNA sequence (4 bases per byte). Positions that
// held N are recorded separately so packing round-trips losslessly for
// sequences containing unknown bases.
type Packed struct {
	data []byte
	n    int
	ns   map[int]struct{} // positions that were N
}

// Pack packs an ASCII sequence into 2-bit form.
func Pack(seq []byte) *Packed {
	p := &Packed{data: make([]byte, (len(seq)+3)/4), n: len(seq)}
	for i, b := range seq {
		c := codeOf[b]
		if c == BaseN {
			if p.ns == nil {
				p.ns = make(map[int]struct{})
			}
			p.ns[i] = struct{}{}
			c = BaseA
		}
		p.data[i>>2] |= c << uint((i&3)*2)
	}
	return p
}

// Len returns the number of bases.
func (p *Packed) Len() int { return p.n }

// Code returns the 2-bit code (or BaseN) at position i.
func (p *Packed) Code(i int) byte {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("bio: packed index %d out of range [0,%d)", i, p.n))
	}
	if _, ok := p.ns[i]; ok {
		return BaseN
	}
	return (p.data[i>>2] >> uint((i&3)*2)) & 3
}

// At returns the ASCII base at position i.
func (p *Packed) At(i int) byte { return Base(p.Code(i)) }

// Unpack returns the full ASCII sequence.
func (p *Packed) Unpack() []byte {
	out := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = p.At(i)
	}
	return out
}

// Slice returns the ASCII bases in [lo, hi).
func (p *Packed) Slice(lo, hi int) []byte {
	if lo < 0 || hi > p.n || lo > hi {
		panic(fmt.Sprintf("bio: packed slice [%d,%d) out of range [0,%d)", lo, hi, p.n))
	}
	out := make([]byte, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = p.At(i)
	}
	return out
}

// Bytes returns the packed backing storage (shared, do not mutate).
func (p *Packed) Bytes() []byte { return p.data }

package bio

import "fmt"

// Scoring is an affine-gap alignment scoring scheme. Match is a bonus
// (positive), Mismatch / GapOpen / GapExtend are penalties (positive values,
// subtracted by the aligners). GapOpen is the cost of the first base of a
// gap, GapExtend the cost of each subsequent base.
type Scoring struct {
	Match     int
	Mismatch  int
	GapOpen   int
	GapExtend int
}

// DefaultScoring mirrors the defaults of the SSW library used by vg
// (match 1, mismatch 4, gap open 6, gap extend 1).
var DefaultScoring = Scoring{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1}

// Validate reports whether the scheme is usable by the aligners.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("bio: match bonus must be positive, got %d", s.Match)
	}
	if s.Mismatch < 0 || s.GapOpen < 0 || s.GapExtend < 0 {
		return fmt.Errorf("bio: penalties must be non-negative: %+v", s)
	}
	return nil
}

// Substitution returns the score contribution of aligning bases a and b.
// N never matches.
func (s Scoring) Substitution(a, b byte) int {
	ca, cb := Code(a), Code(b)
	if ca == cb && ca != BaseN {
		return s.Match
	}
	return -s.Mismatch
}

// Matrix returns the 5x5 substitution matrix over 2-bit codes (N row/column
// always -Mismatch), in the layout used by the striped Smith-Waterman
// kernels.
func (s Scoring) Matrix() [25]int8 {
	var m [25]int8
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j && i != BaseN {
				m[i*5+j] = int8(s.Match)
			} else {
				m[i*5+j] = int8(-s.Mismatch)
			}
		}
	}
	return m
}

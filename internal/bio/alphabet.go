// Package bio provides the basic sequence substrate shared by every other
// package in PangenomicsBench-Go: the DNA alphabet, 2-bit encodings, FASTA
// and FASTQ I/O, alignment scoring schemes, and CIGAR strings.
package bio

import "fmt"

// Bases in canonical order. Code 0..3 is the 2-bit encoding used throughout
// the suite; 4 encodes N (unknown).
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
	BaseN = 4
)

// Alphabet is the canonical uppercase DNA alphabet indexed by 2-bit code.
var Alphabet = [5]byte{'A', 'C', 'G', 'T', 'N'}

// codeOf maps an ASCII byte to its 2-bit code, or BaseN for anything that is
// not a (case-insensitive) DNA base.
var codeOf [256]byte

// complementOf maps an ASCII base to its complement, preserving case.
var complementOf [256]byte

func init() {
	for i := range codeOf {
		codeOf[i] = BaseN
		complementOf[i] = 'N'
	}
	set := func(b byte, code byte, comp byte) {
		codeOf[b] = code
		codeOf[b|0x20] = code // lowercase
		complementOf[b] = comp
		complementOf[b|0x20] = comp | 0x20
	}
	set('A', BaseA, 'T')
	set('C', BaseC, 'G')
	set('G', BaseG, 'C')
	set('T', BaseT, 'A')
	set('U', BaseT, 'A')
	set('N', BaseN, 'N')
}

// Code returns the 2-bit code (0..3) of base b, or BaseN (4) if b is not a
// DNA base.
func Code(b byte) byte { return codeOf[b] }

// Base returns the uppercase ASCII base for a 2-bit code.
func Base(code byte) byte {
	if code > BaseN {
		return 'N'
	}
	return Alphabet[code]
}

// Complement returns the complementary base of b, preserving case. Non-base
// bytes complement to 'N'.
func Complement(b byte) byte { return complementOf[b] }

// ReverseComplement returns the reverse complement of seq as a new slice.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = complementOf[b]
	}
	return out
}

// ReverseComplementInPlace reverse-complements seq in place.
func ReverseComplementInPlace(seq []byte) {
	i, j := 0, len(seq)-1
	for i < j {
		seq[i], seq[j] = complementOf[seq[j]], complementOf[seq[i]]
		i, j = i+1, j-1
	}
	if i == j {
		seq[i] = complementOf[seq[i]]
	}
}

// IsDNA reports whether every byte of seq is an A/C/G/T/N letter (any case).
func IsDNA(seq []byte) bool {
	for _, b := range seq {
		switch b {
		case 'A', 'C', 'G', 'T', 'N', 'a', 'c', 'g', 't', 'n', 'U', 'u':
		default:
			return false
		}
	}
	return true
}

// Validate returns an error describing the first non-DNA byte in seq.
func Validate(seq []byte) error {
	for i, b := range seq {
		if codeOf[b] == BaseN && b != 'N' && b != 'n' {
			return fmt.Errorf("bio: invalid base %q at position %d", b, i)
		}
	}
	return nil
}

// Encode2Bit converts an ASCII sequence to its 2-bit codes (one byte per
// base, values 0..4).
func Encode2Bit(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[i] = codeOf[b]
	}
	return out
}

// Decode2Bit converts 2-bit codes back to uppercase ASCII bases.
func Decode2Bit(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = Base(c)
	}
	return out
}

// GC returns the fraction of G/C bases in seq (0 if seq is empty).
func GC(seq []byte) float64 {
	if len(seq) == 0 {
		return 0
	}
	n := 0
	for _, b := range seq {
		c := codeOf[b]
		if c == BaseC || c == BaseG {
			n++
		}
	}
	return float64(n) / float64(len(seq))
}

// AppendCodes appends the 2-bit codes of seq to dst and returns the extended
// slice — the allocation-free variant of Encode2Bit for reusable kernel
// workspaces (append into a caller-owned buffer, SNIPPETS Compact idiom).
func AppendCodes(dst, seq []byte) []byte {
	for _, b := range seq {
		dst = append(dst, codeOf[b])
	}
	return dst
}

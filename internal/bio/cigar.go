package bio

import (
	"fmt"
	"strings"
)

// CigarOp is one alignment operation kind.
type CigarOp byte

// Alignment operation codes, matching SAM semantics.
const (
	CigarMatch    CigarOp = 'M' // alignment match or mismatch
	CigarIns      CigarOp = 'I' // insertion to the reference
	CigarDel      CigarOp = 'D' // deletion from the reference
	CigarEq       CigarOp = '=' // sequence match
	CigarX        CigarOp = 'X' // sequence mismatch
	CigarSoftClip CigarOp = 'S' // soft clip on the query
)

// CigarElem is a run of identical operations.
type CigarElem struct {
	Op  CigarOp
	Len int
}

// Cigar is an alignment description as a sequence of operation runs.
type Cigar []CigarElem

// Append adds n ops of kind op, merging with the trailing element when the
// kinds match.
func (c Cigar) Append(op CigarOp, n int) Cigar {
	if n <= 0 {
		return c
	}
	if len(c) > 0 && c[len(c)-1].Op == op {
		c[len(c)-1].Len += n
		return c
	}
	return append(c, CigarElem{op, n})
}

// String renders the CIGAR in SAM text form, e.g. "5=1X10=2D3=".
func (c Cigar) String() string {
	var b strings.Builder
	for _, e := range c {
		fmt.Fprintf(&b, "%d%c", e.Len, e.Op)
	}
	return b.String()
}

// QueryLen returns the number of query bases the CIGAR consumes.
func (c Cigar) QueryLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case CigarMatch, CigarIns, CigarEq, CigarX, CigarSoftClip:
			n += e.Len
		}
	}
	return n
}

// RefLen returns the number of reference bases the CIGAR consumes.
func (c Cigar) RefLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case CigarMatch, CigarDel, CigarEq, CigarX:
			n += e.Len
		}
	}
	return n
}

// Reverse reverses the CIGAR in place and returns it (used after tracebacks
// that walk end-to-start).
func (c Cigar) Reverse() Cigar {
	for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
		c[i], c[j] = c[j], c[i]
	}
	return c
}

// EditDistance returns the unit-cost edit distance implied by the CIGAR
// (X, I and D count 1 per base; = and M count 0 — callers that used M for
// both match and mismatch should prefer =/X CIGARs).
func (c Cigar) EditDistance() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case CigarX, CigarIns, CigarDel:
			n += e.Len
		}
	}
	return n
}

// ParseCigar parses a SAM-style CIGAR string.
func ParseCigar(s string) (Cigar, error) {
	var c Cigar
	n := 0
	seen := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= '0' && ch <= '9' {
			n = n*10 + int(ch-'0')
			seen = true
			continue
		}
		if !seen {
			return nil, fmt.Errorf("bio: cigar %q: operation %q at %d has no length", s, ch, i)
		}
		switch CigarOp(ch) {
		case CigarMatch, CigarIns, CigarDel, CigarEq, CigarX, CigarSoftClip:
			c = append(c, CigarElem{CigarOp(ch), n})
		default:
			return nil, fmt.Errorf("bio: cigar %q: unknown operation %q", s, ch)
		}
		n, seen = 0, false
	}
	if seen {
		return nil, fmt.Errorf("bio: cigar %q: trailing length without operation", s)
	}
	return c, nil
}

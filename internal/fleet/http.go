package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// The worker daemon's wire protocol is three JSON-over-HTTP endpoints —
// stdlib only, mirroring the node-registry-over-RPC shape of production
// daemon fleets:
//
//	POST /configure  ConfigPush   → 204
//	POST /match      MatchRequest → MatchResponse (409 unknown-assembly)
//	GET  /ping                    → PingReply
//	GET  /healthz                 → "ok"
//
// Errors are JSON {"error": ..., "code": ...}; code "unknown-assembly"
// maps back to ErrUnknownAssembly client-side so the coordinator can
// re-push its catalog and retry instead of declaring the node dead.

// httpError is the wire form of a worker-side error.
type httpError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

const codeUnknownAssembly = "unknown-assembly"

// Handler exposes w over the fleet wire protocol.
func Handler(w *Worker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/configure", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var push ConfigPush
		if err := json.NewDecoder(r.Body).Decode(&push); err != nil {
			writeErr(rw, http.StatusBadRequest, err, "")
			return
		}
		if err := w.Configure(push); err != nil {
			writeErr(rw, http.StatusBadRequest, err, "")
			return
		}
		rw.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/match", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req MatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(rw, http.StatusBadRequest, err, "")
			return
		}
		resp, err := w.Match(r.Context(), req)
		if err != nil {
			if errors.Is(err, ErrUnknownAssembly) {
				writeErr(rw, http.StatusConflict, err, codeUnknownAssembly)
			} else {
				writeErr(rw, http.StatusInternalServerError, err, "")
			}
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	})
	mux.HandleFunc("/ping", func(rw http.ResponseWriter, r *http.Request) {
		reply := w.Ping()
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(reply)
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// writeErr serves one JSON error body.
func writeErr(rw http.ResponseWriter, status int, err error, code string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(httpError{Error: err.Error(), Code: code})
}

// WorkerServer runs one worker daemon: a Worker behind Handler on a TCP
// listener (the pgbench fleet-worker process).
type WorkerServer struct {
	W   *Worker
	srv *http.Server
	ln  net.Listener
}

// NewWorkerServer wraps w; Start binds and serves it.
func NewWorkerServer(w *Worker) *WorkerServer { return &WorkerServer{W: w} }

// Start listens on addr (e.g. ":9001", "127.0.0.1:0") and serves in the
// background, returning the bound address.
func (s *WorkerServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: Handler(s.W), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the daemon (no-op if never started).
func (s *WorkerServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// HTTPTransport talks the fleet wire protocol to a remote worker daemon.
type HTTPTransport struct {
	base   string
	client *http.Client
}

// Dial returns a transport for the worker daemon at addr (host:port or a
// full http:// base URL). No connection is made until the first call.
func Dial(addr string) *HTTPTransport {
	base := addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	return &HTTPTransport{base: base, client: &http.Client{}}
}

// Addr returns the daemon base URL this transport targets.
func (t *HTTPTransport) Addr() string { return t.base }

func (t *HTTPTransport) Configure(ctx context.Context, push ConfigPush) error {
	return t.post(ctx, "/configure", push, nil)
}

func (t *HTTPTransport) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	var resp MatchResponse
	if err := t.post(ctx, "/match", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Ping(ctx context.Context) (*PingReply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/ping", nil)
	if err != nil {
		return nil, err
	}
	res, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, decodeErr(res)
	}
	var reply PingReply
	if err := json.NewDecoder(res.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

func (t *HTTPTransport) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

// post sends one JSON request and decodes the JSON reply into out (nil out
// expects an empty 2xx).
func (t *HTTPTransport) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode < 200 || res.StatusCode > 299 {
		return decodeErr(res)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, res.Body)
		return nil
	}
	return json.NewDecoder(res.Body).Decode(out)
}

// decodeErr maps a non-2xx reply back onto the fleet error vocabulary.
func decodeErr(res *http.Response) error {
	var he httpError
	raw, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
	if json.Unmarshal(raw, &he) == nil && he.Error != "" {
		if he.Code == codeUnknownAssembly {
			return fmt.Errorf("%w (%s)", ErrUnknownAssembly, he.Error)
		}
		return fmt.Errorf("fleet: worker error (HTTP %d): %s", res.StatusCode, he.Error)
	}
	return fmt.Errorf("fleet: worker error (HTTP %d): %s", res.StatusCode, bytes.TrimSpace(raw))
}

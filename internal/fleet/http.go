package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// The worker daemon's wire protocol is JSON-over-HTTP endpoints — stdlib
// only, mirroring the node-registry-over-RPC shape of production daemon
// fleets:
//
//	POST /configure  ConfigPush   → 204
//	POST /match      MatchRequest → MatchResponse (409 unknown-assembly)
//	GET  /ping                    → PingReply
//	GET  /metrics                 → Prometheus text (?format=json: raw snapshot)
//	GET  /healthz                 → "ok"
//
// Errors are JSON {"error": ..., "code": ...}; code "unknown-assembly"
// maps back to ErrUnknownAssembly client-side so the coordinator can
// re-push its catalog and retry instead of declaring the node dead.
//
// /match participates in distributed tracing: a Traceparent request header
// (obs.Inject on the coordinator side) links the worker's span under the
// coordinator's build trace, and the completed worker subtree rides back in
// MatchResponse.Trace. /metrics is the federation scrape target: the
// coordinator polls it (JSON form) on the heartbeat tick and re-exposes
// every series node-labeled on its own admin endpoint.

// httpError is the wire form of a worker-side error.
type httpError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

const codeUnknownAssembly = "unknown-assembly"

// Handler exposes w over the fleet wire protocol.
func Handler(w *Worker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/configure", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var push ConfigPush
		if err := json.NewDecoder(r.Body).Decode(&push); err != nil {
			writeErr(rw, http.StatusBadRequest, err, "decode", w)
			return
		}
		if err := w.Configure(push); err != nil {
			writeErr(rw, http.StatusBadRequest, err, "configure", w)
			return
		}
		rw.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/match", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req MatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(rw, http.StatusBadRequest, err, "decode", w)
			return
		}
		ctx := r.Context()
		if sc, ok := obs.Extract(r.Header); ok {
			ctx = obs.ContextWithRemote(ctx, sc)
		}
		resp, err := w.Match(ctx, req)
		if err != nil {
			if errors.Is(err, ErrUnknownAssembly) {
				writeErr(rw, http.StatusConflict, err, codeUnknownAssembly, w)
			} else {
				writeErr(rw, http.StatusInternalServerError, err, "match", w)
			}
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	})
	mux.HandleFunc("/ping", func(rw http.ResponseWriter, r *http.Request) {
		reply := w.Ping()
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(reply)
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		snap := w.MetricsSnapshot()
		if r.URL.Query().Get("format") == "json" {
			rw.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(rw).Encode(snap)
			return
		}
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(rw, obs.PromText(snap))
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// writeErr serves one JSON error body, counting it under the worker's
// fleet.transport_errors{code=...} so wire failures that would otherwise
// vanish into coordinator retry logic stay visible on the federated scrape.
func writeErr(rw http.ResponseWriter, status int, err error, code string, w *Worker) {
	if code == "" {
		code = fmt.Sprintf("http-%d", status)
	}
	if w != nil {
		w.obsMu.RLock()
		m := w.metrics
		w.obsMu.RUnlock()
		m.Add(obs.WithLabel("fleet.transport_errors", "code", code), 1)
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(httpError{Error: err.Error(), Code: code})
}

// WorkerServer runs one worker daemon: a Worker behind Handler on a TCP
// listener (the pgbench fleet-worker process).
type WorkerServer struct {
	W   *Worker
	srv *http.Server
	ln  net.Listener
}

// NewWorkerServer wraps w; Start binds and serves it.
func NewWorkerServer(w *Worker) *WorkerServer { return &WorkerServer{W: w} }

// Start listens on addr (e.g. ":9001", "127.0.0.1:0") and serves in the
// background, returning the bound address.
func (s *WorkerServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: Handler(s.W), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the daemon (no-op if never started).
func (s *WorkerServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// HTTPTransport talks the fleet wire protocol to a remote worker daemon.
// Outbound requests carry the caller's trace context as a Traceparent
// header (obs.Inject), so worker-side spans link under the dispatching
// build trace.
type HTTPTransport struct {
	base    string
	client  *http.Client
	metrics *perf.Metrics
}

// Dial returns a transport for the worker daemon at addr (host:port or a
// full http:// base URL). No connection is made until the first call.
func Dial(addr string) *HTTPTransport {
	base := addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	return &HTTPTransport{base: base, client: &http.Client{}}
}

// Addr returns the daemon base URL this transport targets.
func (t *HTTPTransport) Addr() string { return t.base }

// SetMetrics wires the coordinator-side metric set; decode-side wire
// failures count under fleet.transport_errors{code=...}. Call before
// handing the transport to a coordinator.
func (t *HTTPTransport) SetMetrics(m *perf.Metrics) { t.metrics = m }

func (t *HTTPTransport) Configure(ctx context.Context, push ConfigPush) error {
	return t.post(ctx, "/configure", push, nil)
}

func (t *HTTPTransport) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	var resp MatchResponse
	if err := t.post(ctx, "/match", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Ping(ctx context.Context) (*PingReply, error) {
	var reply PingReply
	if err := t.get(ctx, "/ping", &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Metrics scrapes the worker's metric snapshot — the federation source the
// coordinator polls on its heartbeat tick (see MetricsSource).
func (t *HTTPTransport) Metrics(ctx context.Context) (perf.MetricsSnapshot, error) {
	var snap perf.MetricsSnapshot
	if err := t.get(ctx, "/metrics?format=json", &snap); err != nil {
		return perf.MetricsSnapshot{}, err
	}
	return snap, nil
}

// get fetches one JSON endpoint into out.
func (t *HTTPTransport) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+path, nil)
	if err != nil {
		return err
	}
	res, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return t.decodeErr(res)
	}
	return json.NewDecoder(res.Body).Decode(out)
}

func (t *HTTPTransport) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

// post sends one JSON request and decodes the JSON reply into out (nil out
// expects an empty 2xx).
func (t *HTTPTransport) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	res, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode < 200 || res.StatusCode > 299 {
		return t.decodeErr(res)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, res.Body)
		return nil
	}
	return json.NewDecoder(res.Body).Decode(out)
}

// decodeErr maps a non-2xx reply back onto the fleet error vocabulary and
// counts it under the coordinator-side fleet.transport_errors{code=...}
// series — the client half of the worker's writeErr accounting, so a wire
// error that melts into retry/reassignment logic still leaves a trace.
func (t *HTTPTransport) decodeErr(res *http.Response) error {
	var he httpError
	raw, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
	ok := json.Unmarshal(raw, &he) == nil && he.Error != ""
	code := he.Code
	if !ok || code == "" {
		code = fmt.Sprintf("http-%d", res.StatusCode)
	}
	t.metrics.Add(obs.WithLabel("fleet.transport_errors", "code", code), 1)
	if ok {
		if he.Code == codeUnknownAssembly {
			return fmt.Errorf("%w (%s)", ErrUnknownAssembly, he.Error)
		}
		return fmt.Errorf("fleet: worker error (HTTP %d): %s", res.StatusCode, he.Error)
	}
	return fmt.Errorf("fleet: worker error (HTTP %d): %s", res.StatusCode, bytes.TrimSpace(raw))
}

package fleet

import (
	"context"
	"sync/atomic"

	"pangenomicsbench/internal/perf"
)

// Transport is one coordinator→worker channel: config push, pair-match
// dispatch, and heartbeat. Implementations must be safe for concurrent
// use; the HTTP transport talks to a fleet-worker daemon, the loopback
// transport calls an in-process Worker directly.
type Transport interface {
	Configure(ctx context.Context, push ConfigPush) error
	Match(ctx context.Context, req MatchRequest) (*MatchResponse, error)
	Ping(ctx context.Context) (*PingReply, error)
	Close() error
}

// MetricsSource is the optional transport capability behind metrics
// federation: a transport that can scrape its worker's metric snapshot.
// Kept out of Transport itself so existing implementations (and test
// fakes) stay valid; the coordinator type-asserts on the heartbeat tick
// and simply skips nodes whose transport can't scrape.
type MetricsSource interface {
	Metrics(ctx context.Context) (perf.MetricsSnapshot, error)
}

// LocalNode is the in-process loopback transport: coordinator calls land
// directly on a Worker in the same address space. Kill makes every
// subsequent call fail with ErrNodeDown — the chaos stand-in for a worker
// process dying mid-build — and Revive brings it back.
type LocalNode struct {
	w    *Worker
	dead atomic.Bool
	// sem, when non-nil, serializes Match calls to emulate a node with a
	// fixed executor width (the fig5-fleet measured rows use width 1 so
	// node count is the only parallelism axis).
	sem chan struct{}
}

// NewLocalNode wraps w in a loopback transport. width > 0 bounds the
// node's concurrent Match executions (0 = unbounded).
func NewLocalNode(w *Worker, width int) *LocalNode {
	n := &LocalNode{w: w}
	if width > 0 {
		n.sem = make(chan struct{}, width)
	}
	return n
}

// Worker returns the wrapped in-process worker (for tests and admin).
func (n *LocalNode) Worker() *Worker { return n.w }

// Kill drops the node: every subsequent RPC fails with ErrNodeDown.
func (n *LocalNode) Kill() { n.dead.Store(true) }

// Revive brings a killed node back. Its worker keeps its catalog and
// cache (a real daemon restart would come back empty; Revive models a
// network partition healing).
func (n *LocalNode) Revive() { n.dead.Store(false) }

func (n *LocalNode) Configure(_ context.Context, push ConfigPush) error {
	if n.dead.Load() {
		return ErrNodeDown
	}
	return n.w.Configure(push)
}

func (n *LocalNode) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	if n.dead.Load() {
		return nil, ErrNodeDown
	}
	if n.sem != nil {
		select {
		case n.sem <- struct{}{}:
			defer func() { <-n.sem }()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if n.dead.Load() {
		return nil, ErrNodeDown
	}
	return n.w.Match(ctx, req)
}

func (n *LocalNode) Ping(_ context.Context) (*PingReply, error) {
	if n.dead.Load() {
		return nil, ErrNodeDown
	}
	r := n.w.Ping()
	return &r, nil
}

// Metrics implements MetricsSource over the loopback: the worker's metric
// snapshot, gated on liveness like every other RPC.
func (n *LocalNode) Metrics(_ context.Context) (perf.MetricsSnapshot, error) {
	if n.dead.Load() {
		return perf.MetricsSnapshot{}, ErrNodeDown
	}
	return n.w.MetricsSnapshot(), nil
}

func (n *LocalNode) Close() error { return nil }

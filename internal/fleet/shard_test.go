package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestPairHashOrderIndependent(t *testing.T) {
	if PairHash("hap3", "hap7") != PairHash("hap7", "hap3") {
		t.Fatal("PairHash depends on argument order")
	}
	if PairHash("a", "b") == PairHash("a", "c") {
		t.Fatal("distinct pairs collide trivially")
	}
	// The separator must keep ("ab","c") and ("a","bc") distinct.
	if PairHash("ab", "c") == PairHash("a", "bc") {
		t.Fatal("PairHash concatenation is ambiguous")
	}
}

// TestPairHashDispersesSimilarNames pins the avalanche finalizer: catalogs
// name assemblies hap00, hap01, ... — near-identical strings whose raw
// FNV-1a sums share high bits (the final XOR'd byte is never multiplied),
// which once collapsed every pair onto shard 0. Both shards of a 2-node
// fleet must receive work from such a catalog.
func TestPairHashDispersesSimilarNames(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		counts := make([]int, n)
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j++ {
				a, b := fmt.Sprintf("hap%02d", i), fmt.Sprintf("hap%02d", j)
				counts[OwnerOf(PairHash(a, b), n)]++
			}
		}
		loaded := 0
		for _, c := range counts {
			if c > 0 {
				loaded++
			}
		}
		// 66 pairs over n ≤ 8 shards: a healthy hash loads every shard.
		if loaded != n {
			t.Fatalf("n=%d: only %d of %d shards received pairs (%v)", n, loaded, n, counts)
		}
	}
}

// TestOwnerExactlyOneShard is the sharding property test: every unordered
// pair maps to exactly one shard — OwnerOf lands in [0, n), the owner's
// key range contains the hash, and the n ranges tile the key space with
// no gaps or overlaps.
func TestOwnerExactlyOneShard(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 61} {
		// Ranges tile [0, 2^64): adjacent, first starts at 0, last ends at max.
		if lo := RangeOf(0, n).Lo; lo != 0 {
			t.Fatalf("n=%d: first range starts at %d", n, lo)
		}
		if hi := RangeOf(n-1, n).Hi; hi != ^uint64(0) {
			t.Fatalf("n=%d: last range ends at %x", n, hi)
		}
		for i := 0; i+1 < n; i++ {
			if RangeOf(i, n).Hi+1 != RangeOf(i+1, n).Lo {
				t.Fatalf("n=%d: gap/overlap between shard %d and %d", n, i, i+1)
			}
		}
		for trial := 0; trial < 2000; trial++ {
			a := fmt.Sprintf("hap%d", rng.Intn(500))
			b := fmt.Sprintf("hap%d", rng.Intn(500))
			if a == b {
				continue
			}
			h := PairHash(a, b)
			owner := OwnerOf(h, n)
			if owner < 0 || owner >= n {
				t.Fatalf("n=%d: owner %d out of range for hash %x", n, owner, h)
			}
			if !RangeOf(owner, n).Contains(h) {
				t.Fatalf("n=%d: owner %d range %v does not contain %x", n, owner, RangeOf(owner, n), h)
			}
			// Exactly one: range boundaries are exact, so no other shard
			// may claim the hash.
			for i := 0; i < n; i++ {
				if i != owner && RangeOf(i, n).Contains(h) {
					t.Fatalf("n=%d: hash %x claimed by shards %d and %d", n, h, owner, i)
				}
			}
		}
	}
	// Range boundary keys resolve to their own shard on both edges.
	for _, n := range []int{2, 3, 5, 8} {
		for i := 0; i < n; i++ {
			r := RangeOf(i, n)
			if OwnerOf(r.Lo, n) != i || OwnerOf(r.Hi, n) != i {
				t.Fatalf("n=%d shard %d: boundary keys misrouted (%d/%d)",
					n, i, OwnerOf(r.Lo, n), OwnerOf(r.Hi, n))
			}
		}
	}
}

// TestShardStableAcrossRebalance checks that shard assignment moves only
// at rebalance boundaries when the node count changes:
//
//   - scaling n → k·n subdivides ranges exactly, so a pair's new owner is
//     always a child of its old range: OwnerOf(h, k·n)/k == OwnerOf(h, n);
//   - growing n → n+1 shifts boundaries by less than one range width, so a
//     pair moves at most one shard forward: new owner ∈ {old, old+1}.
func TestShardStableAcrossRebalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		h := rng.Uint64()
		for _, n := range []int{1, 2, 3, 4, 6, 8} {
			for _, k := range []int{2, 3, 4} {
				if OwnerOf(h, k*n)/k != OwnerOf(h, n) {
					t.Fatalf("h=%x: OwnerOf(%d)=%d not nested under OwnerOf(%d)=%d",
						h, k*n, OwnerOf(h, k*n), n, OwnerOf(h, n))
				}
			}
			old, grown := OwnerOf(h, n), OwnerOf(h, n+1)
			if grown != old && grown != old+1 {
				t.Fatalf("h=%x: n=%d→%d moved shard %d→%d (want ≤1 step)", h, n, n+1, old, grown)
			}
		}
	}
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// findChild returns the first direct child of d named name (nil if absent).
func findChild(d *obs.SpanData, name string) *obs.SpanData {
	for i := range d.Children {
		if d.Children[i].Name == name {
			return &d.Children[i]
		}
	}
	return nil
}

func attrValue(d *obs.SpanData, key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestHTTPTransportErrorCounters asserts both halves of the wire-error
// accounting: the worker's writeErr and the client's decodeErr each count
// the failure under fleet.transport_errors{code=...}.
func TestHTTPTransportErrorCounters(t *testing.T) {
	wm := perf.NewMetrics()
	w := NewWorker("errd", 0)
	w.SetObs(wm, nil)
	srv := NewWorkerServer(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	tr := Dial(addr)
	t.Cleanup(func() { _ = tr.Close() })
	cm := perf.NewMetrics()
	tr.SetMetrics(cm)

	// The worker has no catalog: any match is an unknown-assembly 409.
	_, err = tr.Match(context.Background(), MatchRequest{A: "a", B: "b", K: testK, W: testW})
	if !errors.Is(err, ErrUnknownAssembly) {
		t.Fatalf("err = %v, want ErrUnknownAssembly", err)
	}
	key := obs.WithLabel("fleet.transport_errors", "code", codeUnknownAssembly)
	if got := wm.Snapshot().Counters[key]; got != 1 {
		t.Fatalf("worker-side %s = %d, want 1", key, got)
	}
	if got := cm.Snapshot().Counters[key]; got != 1 {
		t.Fatalf("client-side %s = %d, want 1", key, got)
	}

	// A rejected config push counts under code="configure" on both sides.
	err = tr.Configure(context.Background(), ConfigPush{Names: []string{""}, Seqs: [][]byte{nil}})
	if err == nil {
		t.Fatal("empty config push accepted")
	}
	key = obs.WithLabel("fleet.transport_errors", "code", "configure")
	if wm.Snapshot().Counters[key] != 1 || cm.Snapshot().Counters[key] != 1 {
		t.Fatalf("configure error not counted on both sides: worker=%d client=%d",
			wm.Snapshot().Counters[key], cm.Snapshot().Counters[key])
	}
}

// TestHTTPMatchTracePiggyback drives one traced match over real HTTP: the
// coordinator-side span context crosses as a Traceparent header, the worker
// links under it, and its subtree (cache outcome, kernel stages) rides back
// on the response.
func TestHTTPMatchTracePiggyback(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 2)
	w := NewWorker("traced", 0)
	w.SetObs(perf.NewMetrics(), obs.NewTracer(obs.TracerConfig{}))
	srv := NewWorkerServer(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	tr := Dial(addr)
	t.Cleanup(func() { _ = tr.Close() })
	if err := tr.Configure(context.Background(), ConfigPush{
		Names: names, Seqs: seqs, Version: 1, Range: RangeOf(0, 1),
	}); err != nil {
		t.Fatal(err)
	}

	ctr := obs.NewTracer(obs.TracerConfig{})
	root := ctr.StartRoot("build")
	ctx := obs.ContextWithSpan(context.Background(), root)
	a, b := names[0], names[1]
	if a > b {
		a, b = b, a
	}
	req := MatchRequest{A: a, B: b, K: testK, W: testW}

	resp, err := tr.Match(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("traced worker returned no span subtree")
	}
	if resp.Trace.Name != "fleet.worker.match" {
		t.Fatalf("subtree root %q", resp.Trace.Name)
	}
	if resp.Trace.TraceID != root.TraceID().String() {
		t.Fatalf("worker trace id %s, want the build's %s", resp.Trace.TraceID, root.TraceID())
	}
	if want := root.SpanContext().SpanID.String(); resp.Trace.ParentID != want {
		t.Fatalf("worker parent span %s, want %s", resp.Trace.ParentID, want)
	}
	if got := attrValue(resp.Trace, "cache_hit"); got != "false" {
		t.Fatalf("first match cache_hit attr = %q", got)
	}
	compute := findChild(resp.Trace, "compute")
	if compute == nil {
		t.Fatalf("miss subtree has no compute span: %+v", resp.Trace.Children)
	}
	for _, stage := range []string{"minimize", "wfa"} {
		if findChild(compute, stage) == nil {
			t.Fatalf("compute span missing %q stage", stage)
		}
	}

	// A cache hit still reports, without kernel stages.
	resp, err = tr.Match(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := attrValue(resp.Trace, "cache_hit"); got != "true" {
		t.Fatalf("second match cache_hit attr = %q", got)
	}
	if findChild(resp.Trace, "compute") != nil {
		t.Fatal("cache hit grew a compute span")
	}
	root.End()

	// Without a caller trace context the worker starts a fresh root.
	resp, err = tr.Match(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || resp.Trace.TraceID == root.TraceID().String() || resp.Trace.ParentID != "" {
		t.Fatalf("untraced request produced %+v", resp.Trace)
	}
}

// TestWorkerUntracedNoPiggyback keeps the wire lean: a worker without obs
// wiring ships no trace payload.
func TestWorkerUntracedNoPiggyback(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 2)
	c, _ := localFleet(t, Config{}, names, seqs, 1)
	blocks, _, _, err := c.AllPairMatches(context.Background(), names, testK, testW)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	w := NewWorker("plain", 0)
	if err := w.Configure(ConfigPush{Names: names, Seqs: seqs, Version: 1, Range: RangeOf(0, 1)}); err != nil {
		t.Fatal(err)
	}
	a, b := names[0], names[1]
	if a > b {
		a, b = b, a
	}
	resp, err := w.Match(context.Background(), MatchRequest{A: a, B: b, K: testK, W: testW})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatalf("untraced worker piggybacked %+v", resp.Trace)
	}
}

// TestCoordinatorTraceTree runs a loopback fleet build under a root span and
// checks the assembled tree: one fleet.dispatch child per pair, each with
// the worker's grafted fleet.worker.match subtree in the same trace.
func TestCoordinatorTraceTree(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 4)
	wtr := obs.NewTracer(obs.TracerConfig{})
	c := NewCoordinator(Config{Metrics: perf.NewMetrics()})
	t.Cleanup(c.Close)
	if err := c.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("node-%d", i)
		w := NewWorker(name, 0)
		w.SetObs(perf.NewMetrics(), wtr)
		if err := c.AddNode(name, NewLocalNode(w, 0)); err != nil {
			t.Fatal(err)
		}
	}

	ctr := obs.NewTracer(obs.TracerConfig{})
	root := ctr.StartRoot("fleet.build")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, _, _, err := c.AllPairMatches(ctx, names, testK, testW); err != nil {
		t.Fatal(err)
	}
	root.End()

	d := root.Data()
	wantPairs := len(names) * (len(names) - 1) / 2
	if len(d.Children) != wantPairs {
		t.Fatalf("root has %d children, want %d dispatch spans", len(d.Children), wantPairs)
	}
	for _, disp := range d.Children {
		if disp.Name != "fleet.dispatch" {
			t.Fatalf("unexpected child %q", disp.Name)
		}
		if len(disp.Children) != 1 || disp.Children[0].Name != "fleet.worker.match" {
			t.Fatalf("dispatch %s has no grafted worker subtree: %+v",
				attrValue(&disp, "pair"), disp.Children)
		}
		wm := disp.Children[0]
		if wm.TraceID != root.TraceID().String() {
			t.Fatalf("worker subtree trace id %s, want %s", wm.TraceID, root.TraceID())
		}
		if wm.ParentID != disp.SpanID {
			t.Fatalf("worker subtree parent %s, want dispatch %s", wm.ParentID, disp.SpanID)
		}
	}
}

// TestCoordinatorFederatedNodes checks the heartbeat-tick scrape: worker
// metric snapshots appear under FederatedNodes within a few ticks.
func TestCoordinatorFederatedNodes(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 3)
	c := NewCoordinator(Config{HeartbeatEvery: 20 * time.Millisecond, Metrics: perf.NewMetrics()})
	t.Cleanup(c.Close)
	if err := c.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	w := NewWorker("n0", 0)
	w.SetObs(perf.NewMetrics(), nil)
	if err := c.AddNode("n0", NewLocalNode(w, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.AllPairMatches(context.Background(), names, testK, testW); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		nodes := c.FederatedNodes()
		if len(nodes) == 1 && nodes[0].Node == "n0" &&
			nodes[0].Snapshot.Counters["fleet.worker.tasks"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated snapshot never arrived: %+v", nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The static shard-balance gauges are on the coordinator's own set.
	snap := c.metrics.Snapshot()
	if snap.Gauges["fleet.shard_imbalance_milli"].Value < 1000 {
		t.Fatalf("imbalance gauge %d, want ≥1000", snap.Gauges["fleet.shard_imbalance_milli"].Value)
	}
	if snap.Gauges[obs.WithLabel("fleet.shard_pairs", "node", "n0")].Value != 3 {
		t.Fatalf("shard_pairs gauge = %+v", snap.Gauges)
	}
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// Config parameterizes a Coordinator.
type Config struct {
	// HeartbeatEvery spaces liveness pings; ≤0 uses 500ms.
	HeartbeatEvery time.Duration
	// DeadAfter is how long a node may go unheard before it is marked dead
	// and its tasks are routed elsewhere; ≤0 uses 3×HeartbeatEvery.
	DeadAfter time.Duration
	// CacheBytes is the per-worker shard-cache budget pushed with the
	// catalog; ≤0 leaves each worker's own default in place.
	CacheBytes int
	// Parallel bounds concurrently dispatched pair tasks in AllPairMatches;
	// ≤0 uses 4× the node count.
	Parallel int
	// Metrics receives fleet counters and gauges (nodes live, tasks,
	// reassignments, remote cache hits); nil disables recording.
	Metrics *perf.Metrics
}

// node is one registry entry: a named worker behind a transport, with the
// coordinator-side liveness and config-push state.
type node struct {
	name string
	t    Transport

	mu          sync.Mutex
	live        bool
	lastSeen    time.Time
	lastPing    PingReply
	lastMetrics *perf.MetricsSnapshot // last heartbeat-scraped snapshot (federation)
	pushed      int                   // catalog version last successfully pushed

	// pushMu serializes config pushes so concurrent dispatches don't each
	// re-send the full catalog before the first push lands.
	pushMu sync.Mutex
}

func (n *node) isLive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.live
}

// Coordinator shards canonical pair-match tasks across a registry of
// worker nodes by pair hash, keeps the registry honest with heartbeats,
// pushes catalog/config to nodes as they join or fall behind, and
// re-issues tasks whose worker dies to the next live node. Merging is
// always in canonical pair order, so fleet results are byte-identical to
// single-process ones.
type Coordinator struct {
	cfg     Config
	metrics *perf.Metrics

	mu      sync.Mutex
	nodes   []*node // sorted by name; index = shard index
	names   []string
	seqs    [][]byte
	byName  map[string]int // catalog name → index
	version int            // catalog version, bumped on registration

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator returns a running coordinator (its heartbeat loop starts
// immediately); Close stops it.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3 * cfg.HeartbeatEvery
	}
	c := &Coordinator{
		cfg:     cfg,
		metrics: cfg.Metrics,
		byName:  map[string]int{},
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.heartbeatLoop()
	return c
}

// Close stops the heartbeat loop and closes every node transport.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.mu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		_ = n.t.Close()
	}
}

// AddNode registers a worker under a unique name and pushes the current
// catalog to it. The node joins live; a failed initial push marks it dead
// (heartbeats will revive it when it answers). Node names order the shard
// ring, so a fixed name set yields a fixed task routing.
func (c *Coordinator) AddNode(name string, t Transport) error {
	if name == "" {
		return fmt.Errorf("fleet: empty node name")
	}
	n := &node{name: name, t: t, live: true, lastSeen: time.Now()}
	// HTTP transports count decode-side wire errors; hand them the
	// coordinator's metric set (optional capability, as with MetricsSource).
	if mt, ok := t.(interface{ SetMetrics(*perf.Metrics) }); ok {
		mt.SetMetrics(c.metrics)
	}
	c.mu.Lock()
	for _, ex := range c.nodes {
		if ex.name == name {
			c.mu.Unlock()
			return fmt.Errorf("fleet: node %q already registered", name)
		}
	}
	c.nodes = append(c.nodes, n)
	sort.Slice(c.nodes, func(i, j int) bool { return c.nodes[i].name < c.nodes[j].name })
	c.mu.Unlock()
	c.updateNodeGauges()
	c.updateShardGauges()
	if err := c.pushConfig(context.Background(), n); err != nil {
		c.markDead(n)
		return nil // registered; heartbeats will retry the push on revival
	}
	return nil
}

// RegisterAssembly adds one named assembly to the coordinator catalog.
// The new catalog version is pushed to each node lazily, before the next
// task that needs it (and eagerly on heartbeat revival).
func (c *Coordinator) RegisterAssembly(name string, seq []byte) error {
	if name == "" {
		return fmt.Errorf("fleet: empty assembly name")
	}
	if len(seq) == 0 {
		return fmt.Errorf("fleet: assembly %q has an empty sequence", name)
	}
	c.mu.Lock()
	if _, dup := c.byName[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fleet: assembly %q already registered", name)
	}
	c.byName[name] = len(c.names)
	c.names = append(c.names, name)
	c.seqs = append(c.seqs, seq)
	c.version++
	c.mu.Unlock()
	c.updateShardGauges()
	return nil
}

// RegisterAssemblies registers parallel name/sequence slices.
func (c *Coordinator) RegisterAssemblies(names []string, seqs [][]byte) error {
	if len(names) != len(seqs) {
		return fmt.Errorf("fleet: %d names but %d sequences", len(names), len(seqs))
	}
	for i := range names {
		if err := c.RegisterAssembly(names[i], seqs[i]); err != nil {
			return err
		}
	}
	return nil
}

// snapshotNodes returns the current ring (ordered) and its size.
func (c *Coordinator) snapshotNodes() []*node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*node(nil), c.nodes...)
}

// configPush builds the current catalog push for shard idx of n.
func (c *Coordinator) configPush(idx, n int) ConfigPush {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ConfigPush{
		Names:      append([]string(nil), c.names...),
		Seqs:       append([][]byte(nil), c.seqs...),
		CacheBytes: c.cfg.CacheBytes,
		Range:      RangeOf(idx, n),
		Version:    c.version,
	}
}

// pushConfig sends the catalog to nd if its pushed version is behind.
func (c *Coordinator) pushConfig(ctx context.Context, nd *node) error {
	nd.pushMu.Lock()
	defer nd.pushMu.Unlock()
	c.mu.Lock()
	version := c.version
	idx, total := 0, len(c.nodes)
	for i, n := range c.nodes {
		if n == nd {
			idx = i
			break
		}
	}
	c.mu.Unlock()
	nd.mu.Lock()
	behind := nd.pushed < version
	nd.mu.Unlock()
	if !behind {
		return nil
	}
	push := c.configPush(idx, total)
	if err := nd.t.Configure(ctx, push); err != nil {
		return err
	}
	c.metrics.Add("fleet.push", 1)
	nd.mu.Lock()
	if push.Version > nd.pushed {
		nd.pushed = push.Version
	}
	nd.mu.Unlock()
	return nil
}

// markDead flips a node dead and refreshes the liveness gauges.
func (c *Coordinator) markDead(nd *node) {
	nd.mu.Lock()
	was := nd.live
	nd.live = false
	nd.mu.Unlock()
	if was {
		c.metrics.Add("fleet.deaths", 1)
	}
	c.updateNodeGauges()
}

// markLive revives a node (heartbeat answered) and refreshes gauges.
func (c *Coordinator) markLive(nd *node, reply *PingReply) {
	nd.mu.Lock()
	nd.live = true
	nd.lastSeen = time.Now()
	if reply != nil {
		nd.lastPing = *reply
	}
	nd.mu.Unlock()
	c.updateNodeGauges()
}

// updateShardGauges recomputes the derived shard-balance view from the
// current catalog and ring: fleet.shard_pairs{node=...} counts the
// unordered catalog pairs each node's key range owns, and
// fleet.shard_imbalance_milli is the max/mean load ratio ×1000 (1000 =
// perfectly balanced). This is what makes hash-routing skew — e.g. the
// bench corpus's 22/6 split across 2 shards (EXPERIMENTS.md fig5-fleet) —
// directly observable on the federated /metrics scrape.
func (c *Coordinator) updateShardGauges() {
	if c.metrics == nil {
		return
	}
	c.mu.Lock()
	names := append([]string(nil), c.names...)
	nodeNames := make([]string, len(c.nodes))
	for i, nd := range c.nodes {
		nodeNames[i] = nd.name
	}
	c.mu.Unlock()
	n := len(nodeNames)
	if n == 0 {
		return
	}
	perShard := make([]int64, n)
	var total int64
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			perShard[OwnerOf(PairHash(names[i], names[j]), n)]++
			total++
		}
	}
	var max int64
	for i, v := range perShard {
		c.metrics.GaugeSet(obs.WithLabel("fleet.shard_pairs", "node", nodeNames[i]), v)
		if v > max {
			max = v
		}
	}
	imbalance := int64(1000)
	if total > 0 {
		mean := float64(total) / float64(n)
		imbalance = int64(float64(max) / mean * 1000)
	}
	c.metrics.GaugeSet("fleet.shard_imbalance_milli", imbalance)
}

func (c *Coordinator) updateNodeGauges() {
	live := 0
	c.mu.Lock()
	total := len(c.nodes)
	for _, n := range c.nodes {
		if n.isLive() {
			live++
		}
	}
	c.mu.Unlock()
	c.metrics.GaugeSet("fleet.nodes_total", int64(total))
	c.metrics.GaugeSet("fleet.nodes_live", int64(live))
}

// heartbeatLoop pings every node each HeartbeatEvery: an answering node is
// (re)marked live and its stats recorded; a node silent for DeadAfter is
// marked dead so dispatch stops routing to it.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for _, nd := range c.snapshotNodes() {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatEvery)
			reply, err := nd.t.Ping(ctx)
			cancel()
			if err == nil {
				wasDead := !nd.isLive()
				c.markLive(nd, reply)
				if wasDead {
					// Revival: make the node useful again before tasks hit it.
					_ = c.pushConfig(context.Background(), nd)
				}
				// Federation scrape rides the heartbeat tick: transports that
				// can read their worker's metric set refresh the node-labeled
				// view the admin /metrics endpoint serves.
				if src, ok := nd.t.(MetricsSource); ok {
					sctx, scancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatEvery)
					if snap, merr := src.Metrics(sctx); merr == nil {
						nd.mu.Lock()
						nd.lastMetrics = &snap
						nd.mu.Unlock()
					}
					scancel()
				}
				continue
			}
			nd.mu.Lock()
			silent := time.Since(nd.lastSeen)
			live := nd.live
			nd.mu.Unlock()
			if live && silent > c.cfg.DeadAfter {
				c.markDead(nd)
			}
		}
	}
}

// Match resolves one unordered pair through the fleet: the pair's hash
// picks its owner shard, dead owners fall through to the next live node on
// the ring (counted as a reassignment), an unknown-assembly reply triggers
// a config re-push and retry, and any other RPC failure marks the node
// dead and re-issues the task. The returned blocks are in canonical
// orientation (SeqA = 0 names the lexicographically smaller assembly).
func (c *Coordinator) Match(ctx context.Context, a, b string, k, w int) ([]build.MatchBlock, build.PairStats, bool, error) {
	if a > b {
		a, b = b, a
	}
	nodes := c.snapshotNodes()
	n := len(nodes)
	if n == 0 {
		return nil, build.PairStats{}, false, ErrNoLiveNodes
	}
	req := MatchRequest{A: a, B: b, K: k, W: w}
	owner := OwnerOf(PairHash(a, b), n)
	var lastErr error
	for off := 0; off < n; off++ {
		nd := nodes[(owner+off)%n]
		if !nd.isLive() {
			continue
		}
		if err := c.pushConfig(ctx, nd); err != nil {
			lastErr = err
			c.markDead(nd)
			continue
		}
		// Each dispatch attempt gets a child span of whatever build trace
		// rides ctx; the traced context is what the transport Injects (HTTP)
		// or hands straight to the worker (loopback), so the worker's linked
		// span parents under this one. The worker's completed subtree comes
		// back piggybacked and is grafted on before End.
		dctx, dsp := obs.StartSpan(ctx, "fleet.dispatch")
		dsp.Set("node", nd.name)
		dsp.Set("pair", a+"|"+b)
		if off > 0 {
			dsp.SetInt("ring_offset", int64(off))
		}
		resp, err := nd.t.Match(dctx, req)
		if err != nil && errors.Is(err, ErrUnknownAssembly) {
			// The worker fell behind the catalog (e.g. daemon restart):
			// force a re-push and retry once on the same node.
			nd.mu.Lock()
			nd.pushed = 0
			nd.mu.Unlock()
			if perr := c.pushConfig(ctx, nd); perr == nil {
				resp, err = nd.t.Match(dctx, req)
			}
		}
		if err != nil {
			dsp.Error(err)
			dsp.End()
			if ctx.Err() != nil {
				return nil, build.PairStats{}, false, ctx.Err()
			}
			lastErr = err
			c.markDead(nd)
			continue
		}
		if resp.Trace != nil {
			dsp.AttachRemote(*resp.Trace)
		}
		dsp.End()
		c.markLive(nd, nil)
		c.metrics.Add("fleet.tasks", 1)
		c.metrics.Add(obs.WithLabel("fleet.dispatched", "node", nd.name), 1)
		if off > 0 {
			c.metrics.Add("fleet.reassigned", 1)
		}
		if resp.CacheHit {
			c.metrics.Add("fleet.remote_hits", 1)
		} else {
			c.metrics.Add("fleet.remote_misses", 1)
		}
		return resp.Blocks, resp.Stats, resp.CacheHit, nil
	}
	if lastErr != nil {
		return nil, build.PairStats{}, false, fmt.Errorf("%w (last: %v)", ErrNoLiveNodes, lastErr)
	}
	return nil, build.PairStats{}, false, ErrNoLiveNodes
}

// RemapBlocks converts one pair's canonical match blocks (indices 0/1 in
// sorted-name orientation) into cohort coordinates i/j, swapping the
// A/B roles when the cohort order is reversed and restoring canonical
// (PosA, PosB) block order afterwards.
func RemapBlocks(canonical []build.MatchBlock, i, j int, swapped bool) []build.MatchBlock {
	out := make([]build.MatchBlock, len(canonical))
	for bi, blk := range canonical {
		if swapped {
			blk.PosA, blk.PosB = blk.PosB, blk.PosA
		}
		out[bi] = build.MatchBlock{SeqA: i, PosA: blk.PosA, SeqB: j, PosB: blk.PosB, Len: blk.Len}
	}
	if swapped {
		sort.Slice(out, func(a, b int) bool {
			if out[a].PosA != out[b].PosA {
				return out[a].PosA < out[b].PosA
			}
			return out[a].PosB < out[b].PosB
		})
	}
	return out
}

// AllPairMatches runs every unordered pair of the named cohort through the
// fleet and merges the per-pair blocks in canonical pair order — the
// distributed counterpart of build.AllPairMatches, byte-identical to it
// for the same inputs. Cohort assemblies must already be registered.
// The returned hit count is the number of pairs served from worker shard
// caches.
func (c *Coordinator) AllPairMatches(ctx context.Context, cohort []string, k, w int) ([]build.MatchBlock, build.PairStats, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	for _, name := range cohort {
		if _, ok := c.byName[name]; !ok {
			c.mu.Unlock()
			return nil, build.PairStats{}, 0, fmt.Errorf("fleet: assembly %q not registered", name)
		}
	}
	c.mu.Unlock()

	type pairJob struct{ i, j int }
	var jobs []pairJob
	for i := 0; i < len(cohort); i++ {
		for j := i + 1; j < len(cohort); j++ {
			jobs = append(jobs, pairJob{i, j})
		}
	}
	results := make([][]build.MatchBlock, len(jobs))
	stats := make([]build.PairStats, len(jobs))
	hits := make([]bool, len(jobs))
	errs := make([]error, len(jobs))

	parallel := c.cfg.Parallel
	if parallel <= 0 {
		parallel = 4 * len(c.snapshotNodes())
	}
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wk := 0; wk < parallel; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				ji := next
				next++
				mu.Unlock()
				if ji >= len(jobs) || ctx.Err() != nil {
					return
				}
				job := jobs[ji]
				nameI, nameJ := cohort[job.i], cohort[job.j]
				swapped := nameI > nameJ
				blocks, st, hit, err := c.Match(ctx, nameI, nameJ, k, w)
				if err != nil {
					errs[ji] = err
					continue
				}
				results[ji] = RemapBlocks(blocks, job.i, job.j, swapped)
				stats[ji] = st
				hits[ji] = hit
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, build.PairStats{}, 0, err
	}

	var out []build.MatchBlock
	var agg build.PairStats
	nHits := 0
	for ji := range jobs {
		if errs[ji] != nil {
			return nil, agg, nHits, errs[ji]
		}
		out = append(out, results[ji]...)
		agg.Add(stats[ji])
		if hits[ji] {
			nHits++
		}
	}
	return out, agg, nHits, nil
}

// FederatedNodes returns the last heartbeat-scraped metric snapshot per
// node — the obs.ServerConfig.FederatedNodes source. Nodes never scraped
// (dead since birth, or a transport without MetricsSource) are omitted.
func (c *Coordinator) FederatedNodes() []obs.NodeMetrics {
	nodes := c.snapshotNodes()
	out := make([]obs.NodeMetrics, 0, len(nodes))
	for _, nd := range nodes {
		nd.mu.Lock()
		snap := nd.lastMetrics
		nd.mu.Unlock()
		if snap != nil {
			out = append(out, obs.NodeMetrics{Node: nd.name, Snapshot: *snap})
		}
	}
	return out
}

// NodeInfos reports the registry for the /fleet admin endpoint: one entry
// per node with liveness, heartbeat age, owned key range and the last
// heartbeat's task/cache counters.
func (c *Coordinator) NodeInfos() []obs.FleetNodeInfo {
	nodes := c.snapshotNodes()
	total := len(nodes)
	infos := make([]obs.FleetNodeInfo, 0, total)
	for i, nd := range nodes {
		nd.mu.Lock()
		info := obs.FleetNodeInfo{
			Name:           nd.name,
			Live:           nd.live,
			HeartbeatAgeMS: time.Since(nd.lastSeen).Milliseconds(),
			Range:          RangeOf(i, total).String(),
			Tasks:          nd.lastPing.Tasks,
			CacheHits:      nd.lastPing.CacheHits,
			CacheMisses:    nd.lastPing.CacheMisses,
			CacheEntries:   nd.lastPing.CacheEntries,
			CacheBytes:     nd.lastPing.CacheBytes,
			Assemblies:     nd.lastPing.Assemblies,
			ConfigVersion:  nd.lastPing.ConfigVersion,
		}
		if a, ok := nd.t.(interface{ Addr() string }); ok {
			info.Addr = a.Addr()
		}
		nd.mu.Unlock()
		infos = append(infos, info)
	}
	return infos
}

package fleet

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/perf"
)

// TestHTTPWorkerEndToEnd drives two real worker daemons over loopback TCP:
// config push, sharded matching, heartbeats, and the unknown-assembly
// error mapping all cross the wire, and the merged result matches the
// single-process build exactly.
func TestHTTPWorkerEndToEnd(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 5)

	var addrs []string
	for i := 0; i < 2; i++ {
		srv := NewWorkerServer(NewWorker("httpd", 0))
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, addr)
	}

	c := NewCoordinator(Config{Metrics: perf.NewMetrics()})
	t.Cleanup(c.Close)
	if err := c.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	for i, addr := range addrs {
		if err := c.AddNode(addr, Dial(addr)); err != nil {
			t.Fatalf("AddNode %d: %v", i, err)
		}
	}

	want, _, err := build.AllPairMatches(context.Background(), seqs, testK, testW, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := c.AllPairMatches(context.Background(), names, testK, testW)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("HTTP fleet blocks differ from single-process build")
	}

	// Heartbeat payloads round-trip the wire.
	tr := Dial(addrs[0])
	t.Cleanup(func() { _ = tr.Close() })
	ping, err := tr.Ping(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ping.Assemblies != len(names) {
		t.Fatalf("daemon has %d assemblies, want %d", ping.Assemblies, len(names))
	}

	// Unknown-assembly replies map back onto the sentinel across HTTP.
	_, err = tr.Match(context.Background(), MatchRequest{A: "nope-a", B: "nope-b", K: testK, W: testW})
	if !errors.Is(err, ErrUnknownAssembly) {
		t.Fatalf("err = %v, want ErrUnknownAssembly", err)
	}

	// NodeInfos carries the daemon address for the /fleet admin view.
	for _, info := range c.NodeInfos() {
		if info.Addr == "" {
			t.Fatalf("node %s has no address", info.Name)
		}
	}
}

// Package fleet distributes PGGB's all-vs-all pair matching — the
// dominant wall-clock cost of graph construction — across a
// coordinator/worker fleet. A Coordinator owns a node registry with
// heartbeats and per-node config push; each Worker owns a contiguous key
// range of the canonical pair-hash space and serves pair-match RPCs out of
// its own ref-counted, single-flight shard cache, so overlapping cohorts
// skip redundant quadratic matching across processes, not just within one.
//
// Determinism contract: a pair's match blocks depend only on the two
// sequences and the (w,k)-minimizer scheme (build.PairMatches is
// deterministic), and the coordinator merges per-pair results in canonical
// pair order — so a fleet build is byte-identical to a single-process
// build regardless of node count, routing, mid-build worker death, or
// which node ultimately computed each pair. Liveness only moves work; it
// never changes results.
//
// Transports are stdlib-only: net/http with JSON bodies for real worker
// daemons (pgbench fleet-worker), and an in-process loopback for tests,
// soak chaos, and single-binary fleets.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/bits"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/obs"
)

// ErrUnknownAssembly reports that a worker was asked to match an assembly
// name it has no sequence for; the coordinator reacts by re-pushing its
// catalog to that node and retrying.
var ErrUnknownAssembly = errors.New("fleet: unknown assembly")

// ErrNoLiveNodes reports that every registered node is dead (or none were
// ever added), so a task cannot be placed anywhere.
var ErrNoLiveNodes = errors.New("fleet: no live nodes")

// ErrNodeDown is returned by a killed loopback transport — the in-process
// stand-in for a worker process dying mid-build.
var ErrNodeDown = errors.New("fleet: node down")

// PairHash maps one unordered assembly-name pair onto the 64-bit key
// space workers shard. The names are canonicalized (sorted) first, so
// both orientations of a pair land on the same key. The raw FNV-1a sum is
// finished with a splitmix64 avalanche: FNV never multiplies after the
// final XOR, so names differing only in their last byte (hap00/hap01/...)
// would otherwise share high bits — and OwnerOf shards on exactly those
// bits, collapsing realistic catalogs onto one worker.
func PairHash(a, b string) uint64 {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche spreading every
// input bit across the whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OwnerOf maps key hash h onto one of n shards using the multiply-shift
// range partition floor(h·n / 2⁶⁴). The mapping is monotone in h
// (shards own contiguous key ranges) and exactly nested across node-count
// multiples: OwnerOf(h, k·n)/k == OwnerOf(h, n), so growing the fleet
// splits ranges at rebalance boundaries without shuffling unrelated pairs.
func OwnerOf(h uint64, n int) int {
	if n <= 1 {
		return 0
	}
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}

// KeyRange is one shard's contiguous, inclusive slice of the hash space.
type KeyRange struct {
	Lo, Hi uint64
}

// Contains reports whether h falls inside r.
func (r KeyRange) Contains(h uint64) bool { return h >= r.Lo && h <= r.Hi }

// String renders the range as fixed-width hex for the /fleet admin view.
func (r KeyRange) String() string { return fmt.Sprintf("%016x-%016x", r.Lo, r.Hi) }

// RangeOf returns the key range shard i of n owns: exactly the keys h with
// OwnerOf(h, n) == i.
func RangeOf(i, n int) KeyRange {
	if n <= 1 {
		return KeyRange{Lo: 0, Hi: ^uint64(0)}
	}
	return KeyRange{Lo: rangeLo(i, n), Hi: rangeHi(i, n)}
}

// rangeLo is the smallest h with floor(h·n/2⁶⁴) == i: ceil(i·2⁶⁴ / n).
func rangeLo(i, n int) uint64 {
	if i <= 0 {
		return 0
	}
	q, r := bits.Div64(uint64(i), 0, uint64(n))
	if r != 0 {
		q++
	}
	return q
}

func rangeHi(i, n int) uint64 {
	if i >= n-1 {
		return ^uint64(0)
	}
	return rangeLo(i+1, n) - 1
}

// MatchRequest asks a worker for the canonical match blocks of one
// unordered assembly pair. A and B are canonical (A < B); K and W select
// the minimizer scheme, making distinct schemes distinct cache entries.
type MatchRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	K int    `json:"k"`
	W int    `json:"w"`
}

// MatchResponse carries one pair's match blocks in canonical orientation
// (SeqA = 0 names A, SeqB = 1 names B), plus the matching stats and
// whether the worker's shard cache already held the result. When the
// worker runs with tracing enabled, Trace piggybacks its completed span
// subtree (cache hit/miss, kernel stage timings) so the coordinator can
// graft it under the dispatching span — one cross-process tree per build.
type MatchResponse struct {
	Blocks   []build.MatchBlock `json:"blocks"`
	Stats    build.PairStats    `json:"stats"`
	CacheHit bool               `json:"cache_hit"`
	Trace    *obs.SpanData      `json:"trace,omitempty"`
}

// ConfigPush is the coordinator→worker capability/config push: the full
// assembly catalog the worker may be asked to match, the shard cache
// budget, and (informationally) the key range this worker currently owns.
type ConfigPush struct {
	Names      []string `json:"names"`
	Seqs       [][]byte `json:"seqs"`
	CacheBytes int      `json:"cache_bytes,omitempty"`
	Range      KeyRange `json:"range"`
	Version    int      `json:"version"`
}

// PingReply is one heartbeat's worth of worker state: identity, workload
// counters, and shard-cache occupancy, aggregated by the coordinator into
// fleet gauges and the /fleet admin view.
type PingReply struct {
	Name          string   `json:"name"`
	Assemblies    int      `json:"assemblies"`
	ConfigVersion int      `json:"config_version"`
	Range         KeyRange `json:"range"`
	Tasks         int64    `json:"tasks"`
	CacheHits     int64    `json:"cache_hits"`
	CacheMisses   int64    `json:"cache_misses"`
	CacheEntries  int      `json:"cache_entries"`
	CacheBytes    int      `json:"cache_bytes"`
}

package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/perf"
)

// testCatalog simulates a small population and returns its assemblies.
func testCatalog(t testing.TB, refLen, n int) ([]string, [][]byte) {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = refLen
	cfg.Haplotypes = n
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names, seqs := pop.AssemblyView()
	return names, seqs
}

// localFleet builds a coordinator over n in-process workers, registered as
// node-0..node-(n-1), with the catalog pushed.
func localFleet(t testing.TB, cfg Config, names []string, seqs [][]byte, n int) (*Coordinator, []*LocalNode) {
	t.Helper()
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	if err := c.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	nodes := make([]*LocalNode, n)
	for i := range nodes {
		nodes[i] = NewLocalNode(NewWorker(fmt.Sprintf("node-%d", i), 0), 0)
		if err := c.AddNode(fmt.Sprintf("node-%d", i), nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return c, nodes
}

const testK, testW = 15, 10

// TestFleetIdenticalToSingleProcess is the fleet acceptance differential:
// a 2-worker fleet's merged all-pair match blocks equal
// build.AllPairMatches exactly, and the graph induced from them is
// byte-identical GFA to a single-process build.PGGB.
func TestFleetIdenticalToSingleProcess(t *testing.T) {
	names, seqs := testCatalog(t, 6000, 6)
	c, _ := localFleet(t, Config{Metrics: perf.NewMetrics()}, names, seqs, 2)

	want, wantStats, err := build.AllPairMatches(context.Background(), seqs, testK, testW, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, _, err := c.AllPairMatches(context.Background(), names, testK, testW)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet blocks differ from single-process (got %d, want %d)", len(got), len(want))
	}
	if gotStats.Blocks != wantStats.Blocks || gotStats.MatchedBases != wantStats.MatchedBases {
		t.Fatalf("fleet stats differ: %+v vs %+v", gotStats, wantStats)
	}

	cfg := build.DefaultPGGBConfig()
	cfg.LayoutIterations = 0
	direct, err := build.PGGB(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaFleet, err := build.PGGBFromMatches(context.Background(), names, seqs, got, gotStats, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := gfa.Write(&a, direct.Graph); err != nil {
		t.Fatal(err)
	}
	if err := gfa.Write(&b, viaFleet.Graph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("fleet-built GFA differs from single-process build.PGGB")
	}
}

// TestFleetShardCacheCrossRequest: a second identical cohort is served
// entirely from worker shard caches, and the shard split routed work to
// both nodes.
func TestFleetShardCacheCrossRequest(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 6)
	m := perf.NewMetrics()
	c, nodes := localFleet(t, Config{Metrics: m}, names, seqs, 2)

	pairs := len(names) * (len(names) - 1) / 2
	_, _, hits, err := c.AllPairMatches(context.Background(), names, testK, testW)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("cold run reported %d cache hits", hits)
	}
	_, _, hits, err = c.AllPairMatches(context.Background(), names, testK, testW)
	if err != nil {
		t.Fatal(err)
	}
	if hits != pairs {
		t.Fatalf("warm run hit %d of %d pairs", hits, pairs)
	}
	if got := m.Counter("fleet.remote_hits"); got != int64(pairs) {
		t.Fatalf("fleet.remote_hits = %d, want %d", got, pairs)
	}
	t0, t1 := nodes[0].Worker().Ping(), nodes[1].Worker().Ping()
	if t0.Tasks == 0 || t1.Tasks == 0 {
		t.Fatalf("sharding routed no work to one node: %d / %d tasks", t0.Tasks, t1.Tasks)
	}
	if t0.Tasks+t1.Tasks != int64(2*pairs) {
		t.Fatalf("task split %d+%d != %d", t0.Tasks, t1.Tasks, 2*pairs)
	}
}

// gated wraps a transport and stalls Match calls until the gate closes —
// the deterministic way to keep a build in flight while a node dies.
type gated struct {
	Transport
	gate chan struct{}
}

func (g *gated) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Transport.Match(ctx, req)
}

// TestFleetWorkerKillMidBuild kills a worker while a multi-pair build is
// in flight: its in-flight and future pairs must be re-issued to the
// surviving node, the merged result must stay byte-identical to the
// single-process run, and the registry must mark the node dead.
func TestFleetWorkerKillMidBuild(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 8)
	m := perf.NewMetrics()
	c := NewCoordinator(Config{
		Metrics:        m,
		HeartbeatEvery: 20 * time.Millisecond,
	})
	t.Cleanup(c.Close)
	if err := c.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	victim := NewLocalNode(NewWorker("node-0", 0), 0)
	survivor := NewLocalNode(NewWorker("node-1", 0), 0)
	gate := &gated{Transport: victim, gate: make(chan struct{})}
	if err := c.AddNode("node-0", gate); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("node-1", survivor); err != nil {
		t.Fatal(err)
	}

	want, _, err := build.AllPairMatches(context.Background(), seqs, testK, testW, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		blocks []build.MatchBlock
		err    error
	}
	done := make(chan result, 1)
	go func() {
		blocks, _, _, err := c.AllPairMatches(context.Background(), names, testK, testW)
		done <- result{blocks, err}
	}()

	// The build is now stalled on the victim's gated pairs: kill the node,
	// then open the gate so the stalled RPCs fail like a dropped daemon.
	time.Sleep(30 * time.Millisecond)
	victim.Kill()
	close(gate.gate)

	res := <-done
	if res.err != nil {
		t.Fatalf("build did not survive the worker kill: %v", res.err)
	}
	if !reflect.DeepEqual(res.blocks, want) {
		t.Fatal("result after worker kill differs from single-process build")
	}
	if got := m.Counter("fleet.reassigned"); got == 0 {
		t.Fatal("no tasks were reassigned despite a dead owner")
	}
	deadSeen := false
	for _, info := range c.NodeInfos() {
		if info.Name == "node-0" && !info.Live {
			deadSeen = true
		}
		if info.Name == "node-1" && !info.Live {
			t.Fatal("survivor marked dead")
		}
	}
	if !deadSeen {
		t.Fatal("registry did not mark the killed node dead")
	}
	if live, _ := m.Gauge("fleet.nodes_live"); live != 1 {
		t.Fatalf("fleet.nodes_live = %d, want 1", live)
	}
}

// TestFleetHeartbeatDeathAndRevival: a silent node is marked dead by the
// heartbeat loop within DeadAfter, and marked live again (with the catalog
// re-pushed) once it answers.
func TestFleetHeartbeatDeathAndRevival(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 4)
	c, nodes := localFleet(t, Config{
		HeartbeatEvery: 15 * time.Millisecond,
		DeadAfter:      45 * time.Millisecond,
		Metrics:        perf.NewMetrics(),
	}, names, seqs, 2)

	liveCount := func() int {
		n := 0
		for _, info := range c.NodeInfos() {
			if info.Live {
				n++
			}
		}
		return n
	}
	waitFor := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for liveCount() != want {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (live=%d, want %d)", what, liveCount(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	nodes[0].Kill()
	waitFor(1, "heartbeat to mark the killed node dead")

	// Matching keeps working against the surviving node.
	if _, _, _, err := c.Match(context.Background(), names[0], names[1], testK, testW); err != nil {
		t.Fatalf("match with one dead node: %v", err)
	}

	nodes[0].Revive()
	waitFor(2, "heartbeat to revive the node")
}

// swapT forwards to a replaceable inner transport — the test stand-in for
// a worker daemon restarting behind a stable address.
type swapT struct {
	mu    sync.Mutex
	inner Transport
}

func (s *swapT) get() Transport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}
func (s *swapT) set(t Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner = t
}
func (s *swapT) Configure(ctx context.Context, push ConfigPush) error {
	return s.get().Configure(ctx, push)
}
func (s *swapT) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	return s.get().Match(ctx, req)
}
func (s *swapT) Ping(ctx context.Context) (*PingReply, error) { return s.get().Ping(ctx) }
func (s *swapT) Close() error                                 { return s.get().Close() }

// TestFleetRepushAfterWorkerRestart: a worker that lost its catalog (a
// daemon restart behind the same address) answers ErrUnknownAssembly; the
// coordinator re-pushes its catalog and the task still completes on that
// node instead of being reassigned.
func TestFleetRepushAfterWorkerRestart(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 3)
	c := NewCoordinator(Config{Metrics: perf.NewMetrics()})
	t.Cleanup(c.Close)
	if err := c.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	st := &swapT{inner: NewLocalNode(NewWorker("node-0", 0), 0)}
	if err := c.AddNode("node-0", st); err != nil {
		t.Fatal(err)
	}

	if _, _, _, err := c.Match(context.Background(), names[0], names[1], testK, testW); err != nil {
		t.Fatal(err)
	}
	// Daemon restart: a fresh worker with an empty catalog takes over.
	st.set(NewLocalNode(NewWorker("node-0", 0), 0))
	if _, _, _, err := c.Match(context.Background(), names[0], names[2], testK, testW); err != nil {
		t.Fatalf("match after worker restart: %v", err)
	}
	if ping, err := st.Ping(context.Background()); err != nil || ping.Assemblies != len(names) {
		t.Fatalf("catalog not re-pushed after restart: %+v, %v", ping, err)
	}
}

func TestFleetNoNodes(t *testing.T) {
	c := NewCoordinator(Config{})
	t.Cleanup(c.Close)
	if err := c.RegisterAssembly("a", []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAssembly("b", []byte("ACGG")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Match(context.Background(), "a", "b", 2, 2); !errors.Is(err, ErrNoLiveNodes) {
		t.Fatalf("err = %v, want ErrNoLiveNodes", err)
	}
}

package fleet

import (
	"container/list"
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// cacheKey identifies one canonical pair-match computation in a worker's
// shard cache (the cross-process counterpart of serve's pair cache).
type cacheKey struct {
	a, b string
	k, w int
}

// cacheEntry is one cached pair result with single-flight and pinning:
// ready closes when the owner publishes or fails, refs > 0 blocks
// eviction while a request is still reading the blocks.
type cacheEntry struct {
	key    cacheKey
	ready  chan struct{}
	err    error
	blocks []build.MatchBlock
	stats  build.PairStats
	cost   int
	refs   int
	elem   *list.Element // non-nil while unpinned and evictable
}

// entryCost approximates a cached entry's bytes (5 ints per block + header).
const entryCost = 40

// Worker executes pair-match RPCs for the shard of the canonical pair-hash
// space the coordinator routes to it. It holds the pushed assembly catalog
// and a size-bounded, ref-counted, single-flight cache of its shard's pair
// results, so overlapping cohorts hit across builds and across processes.
// All methods are safe for concurrent use.
type Worker struct {
	name string

	// obsMu guards the observability hooks, which SetObs may swap while
	// Match RPCs are in flight (the daemon wires them after construction).
	obsMu   sync.RWMutex
	metrics *perf.Metrics
	tracer  *obs.Tracer

	mu         sync.Mutex
	catalog    map[string][]byte
	version    int // last ConfigPush.Version applied
	owned      KeyRange
	capacity   int
	size       int
	entries    map[cacheKey]*cacheEntry
	lru        *list.List // front = most recent; unpinned ready entries only
	tasks      int64
	hits       int64
	misses     int64
	evictions  int64
	assemblies int
}

// NewWorker returns a named worker with an empty catalog and the given
// shard-cache capacity in bytes (≤0 uses 32 MiB).
func NewWorker(name string, cacheBytes int) *Worker {
	if cacheBytes <= 0 {
		cacheBytes = 32 << 20
	}
	return &Worker{
		name:     name,
		catalog:  map[string][]byte{},
		capacity: cacheBytes,
		entries:  map[cacheKey]*cacheEntry{},
		lru:      list.New(),
	}
}

// Configure applies one coordinator config push: the assembly catalog is
// replaced wholesale (pushes are cumulative snapshots, not deltas), and
// the cache budget and owned range are updated. Stale pushes (a version
// below the last applied one) are ignored, so a delayed re-push cannot
// roll the catalog back.
func (w *Worker) Configure(push ConfigPush) error {
	if len(push.Names) != len(push.Seqs) {
		return fmt.Errorf("fleet: config push has %d names but %d seqs", len(push.Names), len(push.Seqs))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if push.Version < w.version {
		return nil
	}
	cat := make(map[string][]byte, len(push.Names))
	for i, n := range push.Names {
		if n == "" || len(push.Seqs[i]) == 0 {
			return fmt.Errorf("fleet: config push entry %d is empty", i)
		}
		cat[n] = push.Seqs[i]
	}
	w.catalog = cat
	w.assemblies = len(cat)
	w.version = push.Version
	w.owned = push.Range
	if push.CacheBytes > 0 {
		w.capacity = push.CacheBytes
		w.evictLocked()
	}
	return nil
}

// SetObs wires the worker's observability hooks: metrics receives task,
// cache and latency series (the /metrics scrape federation reads), tracer
// records one linked span per Match RPC (shipped back on MatchResponse when
// the request carried a trace context). Both nil-safe; safe to call while
// serving.
func (w *Worker) SetObs(m *perf.Metrics, tr *obs.Tracer) {
	w.obsMu.Lock()
	w.metrics = m
	w.tracer = tr
	w.obsMu.Unlock()
}

// MetricsSnapshot reports the worker's metric set — the payload of the
// transport's GET /metrics, federated by the coordinator under a node
// label. An unwired worker reports an empty (non-nil-map) snapshot.
func (w *Worker) MetricsSnapshot() perf.MetricsSnapshot {
	w.obsMu.RLock()
	m := w.metrics
	w.obsMu.RUnlock()
	return m.Snapshot()
}

// Match resolves one canonical pair through the shard cache, computing it
// with build.PairMatches on a miss. Concurrent requests for the same
// uncomputed pair share one execution. The returned blocks are in
// canonical orientation (SeqA = 0 names req.A, SeqB = 1 names req.B) and
// must not be mutated by the caller.
//
// With tracing wired (SetObs), every call runs under a span linked to the
// caller's trace context — an in-process span for loopback transports, the
// extracted traceparent for HTTP — and the completed subtree rides back on
// MatchResponse.Trace.
func (w *Worker) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	w.obsMu.RLock()
	m, tr := w.metrics, w.tracer
	w.obsMu.RUnlock()

	t0 := time.Now()
	sp := tr.StartLinked("fleet.worker.match", obs.ParentFromContext(ctx))
	sp.Set("node", w.name)
	sp.Set("pair", req.A+"|"+req.B)
	resp, err := w.match(ctx, req, sp)
	m.Observe("fleet.worker.match", time.Since(t0))
	m.Add("fleet.worker.tasks", 1)
	if err != nil {
		m.Add("fleet.worker.errors", 1)
		sp.Error(err)
		sp.End()
		return nil, err
	}
	if resp.CacheHit {
		m.Add("fleet.worker.cache_hits", 1)
	} else {
		m.Add("fleet.worker.cache_misses", 1)
	}
	sp.Set("cache_hit", strconv.FormatBool(resp.CacheHit))
	sp.SetInt("blocks", int64(len(resp.Blocks)))
	sp.End()
	if sp != nil {
		d := sp.Data()
		resp.Trace = &d
	}
	return resp, nil
}

// match is the shard-cache path behind Match; sp (possibly nil) receives
// the kernel stage breakdown on a compute.
func (w *Worker) match(ctx context.Context, req MatchRequest, sp *obs.Span) (*MatchResponse, error) {
	if req.A >= req.B {
		return nil, fmt.Errorf("fleet: non-canonical pair %q, %q (want A < B)", req.A, req.B)
	}
	key := cacheKey{a: req.A, b: req.B, k: req.K, w: req.W}
	for {
		w.mu.Lock()
		e := w.entries[key]
		if e == nil {
			seqA, okA := w.catalog[req.A]
			seqB, okB := w.catalog[req.B]
			if !okA || !okB {
				w.mu.Unlock()
				return nil, fmt.Errorf("%w: %q/%q (catalog has %d assemblies)", ErrUnknownAssembly, req.A, req.B, len(w.catalog))
			}
			e = &cacheEntry{key: key, ready: make(chan struct{}), refs: 1}
			w.entries[key] = e
			w.misses++
			w.tasks++
			w.mu.Unlock()

			cs := sp.Child("compute")
			tc := time.Now()
			blocks, stats, err := build.PairMatches(0, seqA, 1, seqB, req.K, req.W, nil)
			if err == nil {
				// Kernel stage attribution: minimize and WFA refine are
				// measured inside PairMatches; anchoring/emission is the rest.
				cs.Stage("minimize", tc, stats.MinimizeTime)
				cs.Stage("wfa", tc.Add(stats.MinimizeTime), stats.WFATime)
				if rest := time.Since(tc) - stats.MinimizeTime - stats.WFATime; rest > 0 {
					cs.Stage("anchor", tc.Add(stats.MinimizeTime+stats.WFATime), rest)
				}
			}
			cs.Error(err)
			cs.End()
			w.mu.Lock()
			if err != nil {
				e.err = err
				delete(w.entries, key)
				close(e.ready)
				w.mu.Unlock()
				return nil, err
			}
			e.blocks = blocks
			e.stats = stats
			e.cost = entryCost*len(blocks) + 64
			w.size += e.cost
			w.evictLocked()
			close(e.ready)
			resp := &MatchResponse{Blocks: e.blocks, Stats: e.stats}
			w.releaseLocked(e)
			w.mu.Unlock()
			return resp, nil
		}

		// Hit or join: pin so eviction cannot drop the entry mid-read.
		e.refs++
		if e.elem != nil {
			w.lru.Remove(e.elem)
			e.elem = nil
		}
		w.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			w.mu.Lock()
			w.releaseLocked(e)
			w.mu.Unlock()
			return nil, ctx.Err()
		}
		w.mu.Lock()
		if e.err != nil {
			// The owner failed and removed the entry; retry as fresh owner.
			w.releaseLocked(e)
			w.mu.Unlock()
			continue
		}
		w.hits++
		w.tasks++
		resp := &MatchResponse{Blocks: e.blocks, Stats: e.stats, CacheHit: true}
		w.releaseLocked(e)
		w.mu.Unlock()
		return resp, nil
	}
}

// releaseLocked unpins an entry; the last release of a still-resident
// ready entry makes it evictable. Called with w.mu held.
func (w *Worker) releaseLocked(e *cacheEntry) {
	e.refs--
	if e.refs > 0 || e.err != nil {
		return
	}
	if w.entries[e.key] != e {
		return // evicted (or replaced) while pinned
	}
	if e.elem == nil {
		e.elem = w.lru.PushFront(e)
	}
	w.evictLocked()
}

// evictLocked drops least-recently-used unpinned entries until the cache
// fits its capacity. Called with w.mu held.
func (w *Worker) evictLocked() {
	for w.size > w.capacity {
		back := w.lru.Back()
		if back == nil {
			return // everything resident is pinned
		}
		e := back.Value.(*cacheEntry)
		w.lru.Remove(back)
		e.elem = nil
		delete(w.entries, e.key)
		w.size -= e.cost
		w.evictions++
	}
}

// Ping reports the worker's identity, counters and cache occupancy — the
// heartbeat payload the coordinator aggregates.
func (w *Worker) Ping() PingReply {
	w.mu.Lock()
	defer w.mu.Unlock()
	return PingReply{
		Name:          w.name,
		Assemblies:    w.assemblies,
		ConfigVersion: w.version,
		Range:         w.owned,
		Tasks:         w.tasks,
		CacheHits:     w.hits,
		CacheMisses:   w.misses,
		CacheEntries:  len(w.entries),
		CacheBytes:    w.size,
	}
}
